#include "suboperators/scan_ops.h"

#include <algorithm>
#include <cstring>

namespace modularis {

// ---------------------------------------------------------------------------
// ColumnScan
// ---------------------------------------------------------------------------

bool ColumnScan::NextBatch(RowBatch* out) {
  out->Clear();
  while (true) {
    if (current_ != nullptr && pos_ < current_->num_rows()) {
      const size_t n =
          std::min(current_->num_rows() - pos_, RowBatch::kDefaultRows);
      if (batch_rows_ == nullptr) {
        batch_rows_ = RowVector::Make(schema_);
      } else {
        batch_rows_->Clear();
      }
      // Zero-filled rows so string padding matches the row path.
      batch_rows_->ResizeRows(n);
      uint8_t* base = batch_rows_->mutable_data();
      const uint32_t stride = batch_rows_->row_size();
      for (size_t c = 0; c < schema_.num_fields(); ++c) {
        const Column& column = current_->column(c);
        const uint32_t off = schema_.offset(c);
        const int col = static_cast<int>(c);
        switch (schema_.field(c).type) {
          case AtomType::kInt32:
          case AtomType::kDate: {
            const std::vector<int32_t>& v = column.i32_data();
            for (size_t i = 0; i < n; ++i) {
              std::memcpy(base + i * stride + off, &v[pos_ + i],
                          sizeof(int32_t));
            }
            break;
          }
          case AtomType::kInt64: {
            const std::vector<int64_t>& v = column.i64_data();
            for (size_t i = 0; i < n; ++i) {
              std::memcpy(base + i * stride + off, &v[pos_ + i],
                          sizeof(int64_t));
            }
            break;
          }
          case AtomType::kFloat64: {
            const std::vector<double>& v = column.f64_data();
            for (size_t i = 0; i < n; ++i) {
              std::memcpy(base + i * stride + off, &v[pos_ + i],
                          sizeof(double));
            }
            break;
          }
          case AtomType::kString: {
            for (size_t i = 0; i < n; ++i) {
              RowWriter w(base + i * stride, &schema_);
              w.SetString(col, column.GetString(pos_ + i));
            }
            break;
          }
        }
      }
      pos_ += n;
      out->Borrow(batch_rows_);
      return true;
    }
    Tuple t;
    if (!child(0)->Next(&t)) return ChildEnd(child(0));
    const Item& item = t[item_index_];
    if (!item.is_table()) {
      return Fail(Status::InvalidArgument(
          "ColumnScan expects a table item, got " + item.ToString()));
    }
    current_ = item.table();
    pos_ = 0;
  }
}

bool MaterializeRowVector::Next(Tuple* out) {
  if (done_) return false;
  RowVectorPtr result = RowVector::Make(schema_);
  // Vectorized drain when the upstream declares a record stream: batches
  // land with one bulk memcpy each, and a released whole-vector batch
  // (the common single-output-batch case of a nested BuildProbe) is
  // adopted zero-copy. Streams that may carry atom tuples (driver-side
  // result assembly) keep the row loop below.
  if (ctx_->options.enable_vectorized && child(0)->ProducesRecordStream()) {
    RowBatch batch;
    while (child(0)->NextBatch(&batch)) {
      if (result->empty() && batch.schema().Equals(schema_)) {
        RowVectorPtr stolen = batch.TakeReleased();
        if (stolen != nullptr) {
          result = std::move(stolen);
          continue;
        }
      }
      if (result->empty()) result->Reserve(batch.size());
      result->AppendRawBatch(batch.data(), batch.size());
    }
    if (!child(0)->status().ok()) return Fail(child(0)->status());
    done_ = true;
    out->clear();
    out->push_back(Item(std::move(result)));
    return true;
  }
  Tuple t;
  while (true) {
    if (!child(0)->Next(&t)) break;
    if (t.size() == 1 && t[0].is_row()) {
      result->AppendRaw(t[0].row().data());
      continue;
    }
    if (t.size() == 1 && t[0].is_collection()) {
      // Fused form: upstream hands whole collections (no RowScan).
      result->AppendAll(*t[0].collection());
      continue;
    }
    // Atom tuple: positional write against the target schema.
    if (t.size() != schema_.num_fields()) {
      return Fail(Status::InvalidArgument(
          "MaterializeRowVector: tuple arity " + std::to_string(t.size()) +
          " does not match schema " + schema_.ToString()));
    }
    RowWriter w = result->AppendRow();
    for (size_t c = 0; c < t.size(); ++c) {
      int col = static_cast<int>(c);
      const Item& item = t[c];
      switch (schema_.field(c).type) {
        case AtomType::kInt32:
        case AtomType::kDate:
          w.SetInt32(col, static_cast<int32_t>(item.i64()));
          break;
        case AtomType::kInt64:
          w.SetInt64(col, item.i64());
          break;
        case AtomType::kFloat64:
          w.SetFloat64(col, item.AsDouble());
          break;
        case AtomType::kString:
          w.SetString(col, item.str());
          break;
      }
    }
  }
  if (!child(0)->status().ok()) return Fail(child(0)->status());
  done_ = true;
  out->clear();
  out->push_back(Item(std::move(result)));
  return true;
}

}  // namespace modularis
