#include "suboperators/scan_ops.h"

namespace modularis {

bool MaterializeRowVector::Next(Tuple* out) {
  if (done_) return false;
  RowVectorPtr result = RowVector::Make(schema_);
  // Vectorized drain when the upstream declares a record stream: batches
  // land with one bulk memcpy each, and a released whole-vector batch
  // (the common single-output-batch case of a nested BuildProbe) is
  // adopted zero-copy. Streams that may carry atom tuples (driver-side
  // result assembly) keep the row loop below.
  if (ctx_->options.enable_vectorized && child(0)->ProducesRecordStream()) {
    RowBatch batch;
    while (child(0)->NextBatch(&batch)) {
      if (result->empty() && batch.schema().Equals(schema_)) {
        RowVectorPtr stolen = batch.TakeReleased();
        if (stolen != nullptr) {
          result = std::move(stolen);
          continue;
        }
      }
      if (result->empty()) result->Reserve(batch.size());
      result->AppendRawBatch(batch.data(), batch.size());
    }
    if (!child(0)->status().ok()) return Fail(child(0)->status());
    done_ = true;
    out->clear();
    out->push_back(Item(std::move(result)));
    return true;
  }
  Tuple t;
  while (true) {
    if (!child(0)->Next(&t)) break;
    if (t.size() == 1 && t[0].is_row()) {
      result->AppendRaw(t[0].row().data());
      continue;
    }
    if (t.size() == 1 && t[0].is_collection()) {
      // Fused form: upstream hands whole collections (no RowScan).
      result->AppendAll(*t[0].collection());
      continue;
    }
    // Atom tuple: positional write against the target schema.
    if (t.size() != schema_.num_fields()) {
      return Fail(Status::InvalidArgument(
          "MaterializeRowVector: tuple arity " + std::to_string(t.size()) +
          " does not match schema " + schema_.ToString()));
    }
    RowWriter w = result->AppendRow();
    for (size_t c = 0; c < t.size(); ++c) {
      int col = static_cast<int>(c);
      const Item& item = t[c];
      switch (schema_.field(c).type) {
        case AtomType::kInt32:
        case AtomType::kDate:
          w.SetInt32(col, static_cast<int32_t>(item.i64()));
          break;
        case AtomType::kInt64:
          w.SetInt64(col, item.i64());
          break;
        case AtomType::kFloat64:
          w.SetFloat64(col, item.AsDouble());
          break;
        case AtomType::kString:
          w.SetString(col, item.str());
          break;
      }
    }
  }
  if (!child(0)->status().ok()) return Fail(child(0)->status());
  done_ = true;
  out->clear();
  out->push_back(Item(std::move(result)));
  return true;
}

}  // namespace modularis
