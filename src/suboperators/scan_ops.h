#ifndef MODULARIS_SUBOPERATORS_SCAN_OPS_H_
#define MODULARIS_SUBOPERATORS_SCAN_OPS_H_

#include <string>
#include <utility>
#include <vector>

#include "core/column_table.h"
#include "core/sub_operator.h"

/// \file scan_ops.h
/// Materialize and scan sub-operators (paper Table 1): the operators that
/// move between the "stream of tuples" world and physical collections.
/// Dedicating one sub-operator to each physical format is design principle
/// (2): it keeps every other operator independent of where data lives.

namespace modularis {

/// Test/driver source yielding a fixed list of tuples.
class TupleSource : public SubOperator {
 public:
  explicit TupleSource(std::vector<Tuple> tuples)
      : SubOperator("TupleSource"), tuples_(std::move(tuples)) {}

  Status Open(ExecContext* ctx) override {
    pos_ = 0;
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override {
    if (pos_ >= tuples_.size()) return false;
    *out = tuples_[pos_++];
    return true;
  }

  /// Tuples are shallow-copied: atom items by value, collection items as
  /// shared read-only pointers.
  SubOpPtr CloneForWorker(WorkerCloneContext*) const override {
    return std::make_unique<TupleSource>(tuples_);
  }

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
};

/// Source yielding one single-item tuple per collection.
class CollectionSource : public SubOperator {
 public:
  explicit CollectionSource(std::vector<RowVectorPtr> collections)
      : SubOperator("CollectionSource"),
        collections_(std::move(collections)) {}

  Status Open(ExecContext* ctx) override {
    pos_ = 0;
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override {
    if (pos_ >= collections_.size()) return false;
    out->clear();
    out->push_back(Item(collections_[pos_++]));
    return true;
  }

  /// Collections are shared read-only between workers.
  SubOpPtr CloneForWorker(WorkerCloneContext*) const override {
    return std::make_unique<CollectionSource>(collections_);
  }

 private:
  std::vector<RowVectorPtr> collections_;
  size_t pos_ = 0;
};

/// RowScan extracts individual records from RowVector collections: for
/// every input tuple (whose item `item_index` is a RowVector) it streams
/// one borrowed-row tuple per contained record.
class RowScan : public SubOperator {
 public:
  explicit RowScan(SubOpPtr child, int item_index = 0)
      : SubOperator("RowScan"), item_index_(item_index) {
    AddChild(std::move(child));
  }

  Status Open(ExecContext* ctx) override {
    current_.reset();
    pos_ = 0;
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override {
    while (true) {
      if (current_ != nullptr && pos_ < current_->size()) {
        out->clear();
        out->push_back(Item(current_->row(pos_++)));
        return true;
      }
      Tuple t;
      if (!child(0)->Next(&t)) return ChildEnd(child(0));
      const Item& item = t[item_index_];
      if (!item.is_collection()) {
        return Fail(Status::InvalidArgument(
            "RowScan expects a collection item, got " + item.ToString()));
      }
      current_ = item.collection();
      pos_ = 0;
    }
  }

  bool ProducesRecordStream() const override { return true; }

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr child_clone = child(0)->CloneForWorker(cc);
    if (child_clone == nullptr) return nullptr;
    return std::make_unique<RowScan>(std::move(child_clone), item_index_);
  }

  /// Native batch path: each input collection is forwarded as one
  /// zero-copy borrowed batch (the remainder of it, if Next() already
  /// consumed a prefix).
  bool NextBatch(RowBatch* out) override {
    out->Clear();
    while (true) {
      if (current_ != nullptr && pos_ < current_->size()) {
        out->BorrowRange(current_, pos_, current_->size() - pos_);
        out->MarkDurable();  // upstream-owned collection, read-only
        pos_ = current_->size();
        return true;
      }
      Tuple t;
      if (!child(0)->Next(&t)) return ChildEnd(child(0));
      const Item& item = t[item_index_];
      if (!item.is_collection()) {
        return Fail(Status::InvalidArgument(
            "RowScan expects a collection item, got " + item.ToString()));
      }
      current_ = item.collection();
      pos_ = 0;
    }
  }

 private:
  int item_index_;
  RowVectorPtr current_;
  size_t pos_ = 0;
};

/// ColumnScan extracts individual records from columnar collections
/// (ColumnTable — our Arrow-table/column-chunk analog), materializing each
/// record into a scratch row.
class ColumnScan : public SubOperator {
 public:
  /// `schema` is the row schema of the produced records (must match the
  /// scanned tables' schemas).
  ColumnScan(SubOpPtr child, Schema schema, int item_index = 0)
      : SubOperator("ColumnScan"),
        schema_(std::move(schema)),
        item_index_(item_index) {
    AddChild(std::move(child));
  }

  Status Open(ExecContext* ctx) override {
    scratch_ = RowVector::Make(schema_);
    scratch_->AppendRow();
    current_.reset();
    pos_ = 0;
    return SubOperator::Open(ctx);
  }

  bool ProducesRecordStream() const override { return true; }

  bool Next(Tuple* out) override {
    while (true) {
      if (current_ != nullptr && pos_ < current_->num_rows()) {
        RowWriter w(scratch_->mutable_row(0), &scratch_->schema());
        current_->MaterializeRow(pos_++, &w);
        out->clear();
        out->push_back(Item(scratch_->row(0)));
        return true;
      }
      Tuple t;
      if (!child(0)->Next(&t)) return ChildEnd(child(0));
      const Item& item = t[item_index_];
      if (!item.is_table()) {
        return Fail(Status::InvalidArgument(
            "ColumnScan expects a table item, got " + item.ToString()));
      }
      current_ = item.table();
      pos_ = 0;
    }
  }

  /// Native batch path: materializes up to kDefaultRows records at a time
  /// column-wise (one type dispatch per column chunk instead of one per
  /// cell). Continues from wherever Next() left the scan.
  bool NextBatch(RowBatch* out) override;

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr child_clone = child(0)->CloneForWorker(cc);
    if (child_clone == nullptr) return nullptr;
    return std::make_unique<ColumnScan>(std::move(child_clone), schema_,
                                        item_index_);
  }

 private:
  Schema schema_;
  int item_index_;
  RowVectorPtr scratch_;
  RowVectorPtr batch_rows_;
  ColumnTablePtr current_;
  size_t pos_ = 0;
};

/// Converts whole ColumnTable items into RowVector collections (the
/// "Arrow table to collection" operator of Table 1 / §4.5).
class TableToCollection : public SubOperator {
 public:
  explicit TableToCollection(SubOpPtr child, int item_index = 0)
      : SubOperator("TableToCollection"), item_index_(item_index) {
    AddChild(std::move(child));
  }

  bool Next(Tuple* out) override {
    Tuple t;
    if (!child(0)->Next(&t)) return ChildEnd(child(0));
    const Item& item = t[item_index_];
    if (!item.is_table()) {
      return Fail(Status::InvalidArgument(
          "TableToCollection expects a table item, got " + item.ToString()));
    }
    out->clear();
    for (size_t i = 0; i < t.size(); ++i) {
      if (static_cast<int>(i) == item_index_) {
        out->push_back(Item(item.table()->ToRowVector()));
      } else {
        out->push_back(t[i]);
      }
    }
    return true;
  }

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr child_clone = child(0)->CloneForWorker(cc);
    if (child_clone == nullptr) return nullptr;
    return std::make_unique<TableToCollection>(std::move(child_clone),
                                               item_index_);
  }

 private:
  int item_index_;
};

/// MaterializeRowVector collects its input stream into one RowVector and
/// yields a single collection tuple. Every nested plan ends with one
/// (paper §4.1.2). Inputs may be borrowed-row tuples (fast packed copy)
/// or all-atom tuples matching `schema` (driver-side result assembly).
class MaterializeRowVector : public SubOperator {
 public:
  MaterializeRowVector(SubOpPtr child, Schema schema)
      : SubOperator("MaterializeRowVector"), schema_(std::move(schema)) {
    AddChild(std::move(child));
  }

  Status Open(ExecContext* ctx) override {
    done_ = false;
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override;

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr child_clone = child(0)->CloneForWorker(cc);
    if (child_clone == nullptr) return nullptr;
    return std::make_unique<MaterializeRowVector>(std::move(child_clone),
                                                  schema_);
  }

 private:
  Schema schema_;
  bool done_ = false;
};

}  // namespace modularis

#endif  // MODULARIS_SUBOPERATORS_SCAN_OPS_H_
