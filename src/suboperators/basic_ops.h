#ifndef MODULARIS_SUBOPERATORS_BASIC_OPS_H_
#define MODULARIS_SUBOPERATORS_BASIC_OPS_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/expr.h"
#include "core/expr_bc.h"
#include "core/parallel.h"
#include "core/sub_operator.h"

/// \file basic_ops.h
/// Orchestration sub-operators (ParameterLookup, NestedMap — paper §3.4)
/// and the record-level data-processing operators (Filter, Map,
/// ParametrizedMap, Projection, Zip, CartesianProduct).

namespace modularis {

/// ParameterLookup encapsulates plan inputs in the operator interface
/// (paper §3.4). It yields the current parameter tuple — pushed by the
/// executor for plan-level inputs or by the enclosing NestedMap for nested
/// plans — exactly once per Open().
class ParameterLookup : public SubOperator {
 public:
  ParameterLookup() : SubOperator("ParameterLookup") {}

  Status Open(ExecContext* ctx) override {
    done_ = false;
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override {
    if (done_) return false;
    const Tuple* params = ctx_->CurrentParams();
    if (params == nullptr) {
      return Fail(Status::Internal(
          "ParameterLookup: no parameter frame is bound"));
    }
    *out = *params;
    done_ = true;
    return true;
  }

  /// Stateless between Open cycles; each worker's clone reads the frame
  /// its own context pushed.
  SubOpPtr CloneForWorker(WorkerCloneContext*) const override {
    return std::make_unique<ParameterLookup>();
  }

 private:
  bool done_ = false;
};

/// NestedMap executes a nested plan independently for each input tuple
/// (paper §3.4). The input tuple becomes the parameter frame of the nested
/// plan's ParameterLookup operators; all tuples the nested plan produces
/// are forwarded downstream. This is design principle (3): high-level
/// control flow expressed through the operator interface itself.
class NestedMap : public SubOperator {
 public:
  NestedMap(SubOpPtr input, SubOpPtr nested_plan)
      : SubOperator("NestedMap"), nested_(std::move(nested_plan)) {
    AddChild(std::move(input));
  }

  Status Open(ExecContext* ctx) override;
  bool Next(Tuple* out) override;
  /// Streams whatever the nested plan streams.
  bool ProducesRecordStream() const override {
    return nested_->ProducesRecordStream();
  }
  /// Batch path: forwards the nested plan's batches (the nested plan
  /// re-opens per input tuple exactly as in Next()).
  bool NextBatch(RowBatch* out) override;
  /// Forwards the nested plan's selection batches untouched.
  bool NextBatchSelective(RowBatch* out) override;
  Status Close() override;
  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override;

  SubOperator* nested_plan() const { return nested_.get(); }

 private:
  /// Closes the finished nested execution and opens the next one; false
  /// at end of input or on error.
  bool AdvanceNested();

  // -- Parallel mode (docs/DESIGN-parallel.md) -----------------------------
  // When the rank has a thread budget and the nested plan clones, input
  // tuples are dispatched dynamically to worker-owned clones in bounded
  // groups; outputs are emitted strictly in input order, so N-thread runs
  // are byte-identical to the serial per-tuple loop. Workers run with
  // num_threads pinned to 1 (no nested pools).

  struct ParTask {
    Tuple input;
    std::vector<Tuple> outputs;
    std::vector<RowVectorPtr> arena;
  };

  /// Pulls the next bounded group of input tuples and runs them on the
  /// worker clones; false at end of input or on error.
  bool FillParGroup();

  SubOpPtr nested_;
  Tuple current_input_;
  std::vector<RowVectorPtr> arena_;
  bool nested_open_ = false;

  bool par_active_ = false;
  std::vector<SubOpPtr> par_plans_;           // one nested clone per worker
  std::unique_ptr<WorkerSet> par_workers_;
  std::vector<ParTask> par_group_;
  size_t par_task_ = 0;  // emission cursor: task within group ...
  size_t par_out_ = 0;   // ... and output tuple within task
  bool par_input_done_ = false;
};

/// Projection retains a subset of the *tuple items* of its input, in the
/// given order (used to dissect parameter tuples in nested plans).
class Projection : public SubOperator {
 public:
  Projection(SubOpPtr child, std::vector<int> indices)
      : SubOperator("Projection"), indices_(std::move(indices)) {
    AddChild(std::move(child));
  }

  bool Next(Tuple* out) override {
    Tuple t;
    if (!child(0)->Next(&t)) return ChildEnd(child(0));
    out->clear();
    for (int i : indices_) out->push_back(t[i]);
    return true;
  }

  /// Native batch path for the single-item form: the selected item of
  /// each input tuple is batched directly (collections forwarded
  /// zero-copy, rows packed), skipping the per-tuple Projection::Next.
  bool NextBatch(RowBatch* out) override;

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr child_clone = child(0)->CloneForWorker(cc);
    if (child_clone == nullptr) return nullptr;
    return std::make_unique<Projection>(std::move(child_clone), indices_);
  }

 private:
  std::vector<int> indices_;
};

/// Filter passes through record tuples whose row item satisfies the
/// predicate expression. A predicate evaluating to a non-numeric value is
/// a hard error on every path (row, batch, selective).
class Filter : public SubOperator {
 public:
  Filter(SubOpPtr child, ExprPtr predicate, int row_item = 0)
      : SubOperator("Filter"),
        predicate_(std::move(predicate)),
        row_item_(row_item) {
    AddChild(std::move(child));
  }

  bool Next(Tuple* out) override {
    Tuple t;
    while (child(0)->Next(&t)) {
      bool keep = false;
      Status st = predicate_->EvalBoolChecked(t[row_item_].row(), &keep);
      if (!st.ok()) return Fail(std::move(st));
      if (keep) {
        *out = std::move(t);
        return true;
      }
    }
    return ChildEnd(child(0));
  }

  /// Only the common row_item == 0 form is a plain record stream.
  bool ProducesRecordStream() const override { return row_item_ == 0; }

  /// Dense batch path: selective pull + compaction of the surviving rows
  /// (contiguous runs copied in one memcpy); an all-pass batch is
  /// forwarded zero-copy.
  bool NextBatch(RowBatch* out) override;

  /// Selection path: the predicate kernel narrows a selection vector over
  /// the input batch, which is forwarded in place — surviving rows are
  /// never copied. Chains through upstream selections.
  bool NextBatchSelective(RowBatch* out) override;

  const ExprPtr& predicate() const { return predicate_; }

  /// Expression trees are immutable and shared between worker clones.
  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr child_clone = child(0)->CloneForWorker(cc);
    if (child_clone == nullptr) return nullptr;
    return std::make_unique<Filter>(std::move(child_clone), predicate_,
                                    row_item_);
  }

 private:
  ExprPtr predicate_;
  int row_item_;
  RowBatch in_batch_;
  RowVectorPtr out_rows_;
  SelVector sel_;
  BatchScratch expr_scratch_;
  // Bytecode tier, compiled lazily against the first batch's schema.
  // Programs are immutable after compilation; the BcState (register
  // files) is this operator's alone, so worker clones — which construct
  // their own Filter — never share mutable state.
  std::unique_ptr<BcProgram> bc_prog_;
  std::unique_ptr<BcState> bc_state_;
  bool bc_compile_attempted_ = false;
};

/// One output column of a Map: either a passthrough of an input column or
/// a computed expression.
struct MapOutput {
  /// Passthrough when >= 0 (expr ignored); computed when -1.
  int passthrough_col = -1;
  ExprPtr expr;

  static MapOutput Pass(int col) { return MapOutput{col, nullptr}; }
  static MapOutput Compute(ExprPtr e) { return MapOutput{-1, std::move(e)}; }
};

/// Map transforms each input record into a new record of `out_schema`
/// (projection pushdown + computed columns). This is the sub-operator the
/// UDF frontend compiles user functions into.
class MapOp : public SubOperator {
 public:
  MapOp(SubOpPtr child, Schema out_schema, std::vector<MapOutput> outputs,
        int row_item = 0)
      : SubOperator("Map"),
        out_schema_(std::move(out_schema)),
        outputs_(std::move(outputs)),
        row_item_(row_item) {
    AddChild(std::move(child));
  }

  Status Open(ExecContext* ctx) override {
    scratch_ = RowVector::Make(out_schema_);
    scratch_->AppendRow();
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override;
  /// Only the common row_item == 0 form is a plain record stream.
  bool ProducesRecordStream() const override { return row_item_ == 0; }
  /// Batch path: pulls selectively (consuming upstream Filter selection
  /// vectors without an intermediate compaction copy) and projects whole
  /// batches column-wise through the batch expression kernels.
  bool NextBatch(RowBatch* out) override;

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr child_clone = child(0)->CloneForWorker(cc);
    if (child_clone == nullptr) return nullptr;
    return std::make_unique<MapOp>(std::move(child_clone), out_schema_,
                                   outputs_, row_item_);
  }

 private:
  Status WriteOutput(const RowRef& in, RowWriter* w);
  /// Column-wise projection of the (possibly selection-carrying) input
  /// batch into out_rows_.
  Status TransformBatch(const RowBatch& in);
  /// Stores one batch-evaluated column into the packed output rows.
  Status StoreColumn(const BatchColumn& v, int col, uint32_t ooff,
                     uint8_t* obase, uint32_t ostride, size_t n);

  Schema out_schema_;
  std::vector<MapOutput> outputs_;
  int row_item_;
  RowVectorPtr scratch_;
  RowBatch in_batch_;
  RowVectorPtr out_rows_;
  SelVector identity_sel_;
  BatchScratch expr_scratch_;
  // Bytecode tier: one value program per computed output column,
  // compiled lazily against the first batch's schema (empty entries for
  // passthrough columns and for columns that fell back entirely).
  std::vector<std::unique_ptr<BcProgram>> bc_progs_;
  std::unique_ptr<BcState> bc_state_;
  bool bc_compile_attempted_ = false;
};

/// ParametrizedMap transforms each record of its data upstream with a
/// callable that additionally receives a parameter tuple read from its
/// first upstream at Open() time (paper §4.1.2: recovering the key bits
/// dropped by the compressed network exchange).
class ParametrizedMap : public SubOperator {
 public:
  using Fn = std::function<void(const Tuple& param, const RowRef& in,
                                RowWriter* out)>;
  /// Bulk variant applied to whole collections (installed by the fusion
  /// pass — the analog of JIT-inlining the UDF into the loop).
  using BulkFn = std::function<RowVectorPtr(const Tuple& param,
                                            const RowVector& in)>;

  /// `param` upstream must yield exactly one tuple; `data` yields records.
  ParametrizedMap(SubOpPtr param, SubOpPtr data, Schema out_schema, Fn fn)
      : SubOperator("ParametrizedMap"),
        out_schema_(std::move(out_schema)),
        fn_(std::move(fn)) {
    AddChild(std::move(param));
    AddChild(std::move(data));
  }

  /// Fused form: `data` yields collections; `bulk_fn` transforms each in
  /// one tight loop and the result is forwarded as a collection tuple.
  ParametrizedMap(SubOpPtr param, SubOpPtr data, Schema out_schema,
                  BulkFn bulk_fn)
      : SubOperator("ParametrizedMap"),
        out_schema_(std::move(out_schema)),
        bulk_fn_(std::move(bulk_fn)) {
    AddChild(std::move(param));
    AddChild(std::move(data));
  }

  Status Open(ExecContext* ctx) override;
  bool Next(Tuple* out) override;
  /// Record form yields records; the bulk form yields collections.
  bool ProducesRecordStream() const override { return fn_ != nullptr; }
  /// Batch path (record form only): applies `fn` over whole input
  /// batches. The bulk form falls back to the default adapter, which
  /// forwards its collection outputs zero-copy.
  bool NextBatch(RowBatch* out) override;

  /// Declares the callable(s) safe to invoke concurrently from several
  /// worker clones (stateless lambdas). Plan builders opt in explicitly;
  /// without it the operator refuses to clone and its chain falls back to
  /// serial execution.
  ParametrizedMap* MarkCloneSafe() {
    clone_safe_ = true;
    return this;
  }

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override;

 private:
  Schema out_schema_;
  Fn fn_;
  BulkFn bulk_fn_;
  bool clone_safe_ = false;
  Tuple param_;
  std::vector<RowVectorPtr> param_arena_;
  RowVectorPtr scratch_;
  // Bulk path (fused plans feed whole collections).
  RowVectorPtr bulk_;
  size_t bulk_pos_ = 0;
  RowBatch in_batch_;
  RowVectorPtr out_rows_;
};

/// Zip combines the i-th tuples of its two upstreams into one tuple
/// (item-wise concatenation). Streams must have equal length.
class Zip : public SubOperator {
 public:
  Zip(SubOpPtr left, SubOpPtr right) : SubOperator("Zip") {
    AddChild(std::move(left));
    AddChild(std::move(right));
  }

  bool Next(Tuple* out) override {
    Tuple a, b;
    bool has_a = child(0)->Next(&a);
    bool has_b = child(1)->Next(&b);
    if (!has_a && !has_b) {
      if (!child(0)->status().ok()) return Fail(child(0)->status());
      if (!child(1)->status().ok()) return Fail(child(1)->status());
      return false;
    }
    if (has_a != has_b) {
      return Fail(Status::InvalidArgument(
          "Zip: upstreams produced different numbers of tuples"));
    }
    *out = std::move(a);
    out->Append(b);
    return true;
  }

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr left = child(0)->CloneForWorker(cc);
    SubOpPtr right = left == nullptr ? nullptr : child(1)->CloneForWorker(cc);
    if (right == nullptr) return nullptr;
    return std::make_unique<Zip>(std::move(left), std::move(right));
  }
};

/// CartesianProduct emits the concatenation of every (left, right) tuple
/// pair. The left side is buffered at Open(); in the paper's plans it
/// carries a single tuple (e.g. the network partition ID) that is attached
/// to every right-side tuple (§4.1.2).
class CartesianProduct : public SubOperator {
 public:
  CartesianProduct(SubOpPtr left, SubOpPtr right)
      : SubOperator("CartesianProduct") {
    AddChild(std::move(left));
    AddChild(std::move(right));
  }

  Status Open(ExecContext* ctx) override;
  bool Next(Tuple* out) override;

  SubOpPtr CloneForWorker(WorkerCloneContext* cc) const override {
    SubOpPtr left = child(0)->CloneForWorker(cc);
    SubOpPtr right = left == nullptr ? nullptr : child(1)->CloneForWorker(cc);
    if (right == nullptr) return nullptr;
    return std::make_unique<CartesianProduct>(std::move(left),
                                              std::move(right));
  }

 private:
  std::vector<Tuple> left_;
  std::vector<RowVectorPtr> arena_;
  Tuple right_current_;
  bool right_valid_ = false;
  size_t left_pos_ = 0;
};

}  // namespace modularis

#endif  // MODULARIS_SUBOPERATORS_BASIC_OPS_H_
