#include "suboperators/partition_ops.h"

namespace modularis {

Schema HistogramSchema() {
  return Schema({Field::I64("count")});
}

namespace {

/// Reads the i64 key at a fixed byte offset of a packed row (covers i64
/// and, via the i32 variant, date/int32 keys).
inline int64_t LoadKey(const uint8_t* row, uint32_t offset, bool wide) {
  if (wide) {
    int64_t k;
    std::memcpy(&k, row + offset, sizeof(k));
    return k;
  }
  int32_t k;
  std::memcpy(&k, row + offset, sizeof(k));
  return k;
}

struct KeyLayout {
  uint32_t offset;
  bool wide;
};

KeyLayout KeyLayoutOf(const Schema& schema, int key_col) {
  return KeyLayout{schema.offset(key_col),
                   schema.field(key_col).type == AtomType::kInt64};
}

}  // namespace

void CountSpan(const uint8_t* rows, size_t n, const Schema& schema,
               const RadixSpec& spec, int key_col, int64_t* counts) {
  const KeyLayout kl = KeyLayoutOf(schema, key_col);
  const uint32_t stride = schema.row_size();
  const uint8_t* p = rows;
  for (size_t i = 0; i < n; ++i, p += stride) {
    ++counts[spec.PartitionOf(LoadKey(p, kl.offset, kl.wide))];
  }
}

void CountRows(const RowVector& rows, const RadixSpec& spec, int key_col,
               int64_t* counts) {
  CountSpan(rows.data(), rows.size(), rows.schema(), spec, key_col, counts);
}

void ScatterSpan(const uint8_t* rows, size_t n, const Schema& schema,
                 const RadixSpec& spec, int key_col,
                 std::vector<RowVectorPtr>* parts) {
  const KeyLayout kl = KeyLayoutOf(schema, key_col);
  const uint32_t stride = schema.row_size();
  const uint8_t* p = rows;
  for (size_t i = 0; i < n; ++i, p += stride) {
    uint32_t pid = spec.PartitionOf(LoadKey(p, kl.offset, kl.wide));
    (*parts)[pid]->AppendRaw(p);
  }
}

void ScatterRows(const RowVector& rows, const RadixSpec& spec, int key_col,
                 std::vector<RowVectorPtr>* parts) {
  ScatterSpan(rows.data(), rows.size(), rows.schema(), spec, key_col, parts);
}

Status ScatterSpanPresized(const uint8_t* rows, size_t n,
                           const Schema& schema, const RadixSpec& spec,
                           int key_col, std::vector<RowVectorPtr>* parts,
                           std::vector<size_t>* cursors) {
  const KeyLayout kl = KeyLayoutOf(schema, key_col);
  const uint32_t stride = schema.row_size();
  const uint8_t* p = rows;
  for (size_t i = 0; i < n; ++i, p += stride) {
    uint32_t pid = spec.PartitionOf(LoadKey(p, kl.offset, kl.wide));
    size_t& cursor = (*cursors)[pid];
    RowVector& part = *(*parts)[pid];
    if (cursor >= part.size()) {
      return Status::InvalidArgument(
          "presized scatter: partition " + std::to_string(pid) +
          " overflows its histogram count " + std::to_string(part.size()));
    }
    std::memcpy(part.mutable_row(cursor), p, stride);
    ++cursor;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// LocalHistogram
// ---------------------------------------------------------------------------

bool LocalHistogram::Next(Tuple* out) {
  if (done_) return false;
  std::vector<int64_t> counts(spec_.fanout(), 0);
  timer_.Bind(ctx_->stats, timer_key_);
  if (ctx_->options.enable_vectorized) {
    // Batched drain: every batch is counted in one packed loop,
    // regardless of whether the upstream streams records or hands whole
    // collections.
    ScopedPhase phase(&timer_);
    RowBatch batch;
    while (child(0)->NextBatch(&batch)) {
      CountSpan(batch.data(), batch.size(), batch.schema(), spec_, key_col_,
                counts.data());
    }
  } else {
    ScopedPhase phase(&timer_);
    Tuple t;
    while (child(0)->Next(&t)) {
      const Item& item = t[0];
      if (item.is_collection()) {
        CountRows(*item.collection(), spec_, key_col_, counts.data());
      } else if (item.is_row()) {
        ++counts[spec_.PartitionOf(KeyAt(item.row(), key_col_))];
      } else {
        return Fail(Status::InvalidArgument(
            "LocalHistogram expects rows or collections, got " +
            item.ToString()));
      }
    }
  }
  if (!child(0)->status().ok()) return Fail(child(0)->status());
  RowVectorPtr hist = RowVector::Make(HistogramSchema());
  hist->Reserve(counts.size());
  for (int64_t c : counts) {
    hist->AppendRow().SetInt64(0, c);
  }
  done_ = true;
  out->clear();
  out->push_back(Item(std::move(hist)));
  return true;
}

// ---------------------------------------------------------------------------
// LocalPartition
// ---------------------------------------------------------------------------

Status LocalPartition::PartitionAllVectorized(const RowVector& hist) {
  ScopedPhase phase(&timer_);
  std::vector<size_t> cursors;
  bool have_schema = false;
  RowBatch batch;
  while (child(0)->NextBatch(&batch)) {
    if (batch.empty()) continue;
    if (!have_schema) {
      have_schema = true;
      // Exact allocation per partition from the histogram prefix counts;
      // the scatter overwrites every row with a full-stride copy (the
      // cursor check below guarantees full coverage), so the rows need
      // no zero-fill.
      for (int p = 0; p < spec_.fanout(); ++p) {
        RowVectorPtr part = RowVector::Make(batch.schema());
        part->ResizeRowsUninitialized(
            static_cast<size_t>(hist.row(p).GetInt64(0)));
        parts_.push_back(std::move(part));
      }
      cursors.assign(spec_.fanout(), 0);
    }
    MODULARIS_RETURN_NOT_OK(ScatterSpanPresized(batch.data(), batch.size(),
                                                batch.schema(), spec_,
                                                key_col_, &parts_, &cursors));
  }
  MODULARIS_RETURN_NOT_OK(child(0)->status());
  if (!have_schema) {
    for (int p = 0; p < spec_.fanout(); ++p) {
      parts_.push_back(RowVector::Make(KeyValueSchema()));
    }
    return Status::OK();
  }
  for (int p = 0; p < spec_.fanout(); ++p) {
    if (cursors[p] != parts_[p]->size()) {
      return Status::InvalidArgument(
          "LocalPartition: histogram count " +
          std::to_string(parts_[p]->size()) + " != scattered rows " +
          std::to_string(cursors[p]) + " for partition " + std::to_string(p));
    }
  }
  return Status::OK();
}

Status LocalPartition::PartitionAll() {
  // Read the histogram to pre-size the output partitions exactly (the
  // radix-partitioning discipline of [58, 63] that makes the scatter a
  // single streaming pass).
  Tuple hist_tuple;
  if (!child(1)->Next(&hist_tuple)) {
    if (!child(1)->status().ok()) return child(1)->status();
    return Status::InvalidArgument("LocalPartition: missing histogram");
  }
  const RowVectorPtr& hist = hist_tuple[0].collection();
  if (static_cast<int>(hist->size()) != spec_.fanout()) {
    return Status::InvalidArgument(
        "LocalPartition: histogram size " + std::to_string(hist->size()) +
        " != fanout " + std::to_string(spec_.fanout()));
  }

  timer_.Bind(ctx_->stats, timer_key_);
  parts_.reserve(spec_.fanout());
  if (ctx_->options.enable_vectorized) {
    return PartitionAllVectorized(*hist);
  }

  ScopedPhase phase(&timer_);
  Schema data_schema;
  bool have_schema = false;

  // Collect input; reserve per-partition capacity on first sight of the
  // data schema.
  Tuple t;
  while (child(0)->Next(&t)) {
    const Item& item = t[0];
    if (item.is_collection()) {
      const RowVector& rows = *item.collection();
      if (!have_schema) {
        data_schema = rows.schema();
        have_schema = true;
        for (int p = 0; p < spec_.fanout(); ++p) {
          RowVectorPtr part = RowVector::Make(data_schema);
          part->Reserve(static_cast<size_t>(hist->row(p).GetInt64(0)));
          parts_.push_back(std::move(part));
        }
      }
      ScatterRows(rows, spec_, key_col_, &parts_);
    } else if (item.is_row()) {
      const RowRef& row = item.row();
      if (!have_schema) {
        data_schema = row.schema();
        have_schema = true;
        for (int p = 0; p < spec_.fanout(); ++p) {
          RowVectorPtr part = RowVector::Make(data_schema);
          part->Reserve(static_cast<size_t>(hist->row(p).GetInt64(0)));
          parts_.push_back(std::move(part));
        }
      }
      uint32_t pid = spec_.PartitionOf(KeyAt(row, key_col_));
      parts_[pid]->AppendRaw(row.data());
    } else {
      return Status::InvalidArgument(
          "LocalPartition expects rows or collections, got " +
          item.ToString());
    }
  }
  if (!child(0)->status().ok()) return child(0)->status();
  if (!have_schema) {
    // Empty input: emit empty partitions with a key/value placeholder
    // schema derived from nothing — use the histogram's count of zero.
    for (int p = 0; p < spec_.fanout(); ++p) {
      parts_.push_back(RowVector::Make(KeyValueSchema()));
    }
  }
  return Status::OK();
}

bool LocalPartition::Next(Tuple* out) {
  if (!partitioned_) {
    Status st = PartitionAll();
    if (!st.ok()) return Fail(st);
    partitioned_ = true;
  }
  if (emit_pos_ >= parts_.size()) return false;
  out->clear();
  out->push_back(Item(static_cast<int64_t>(emit_pos_)));
  out->push_back(Item(parts_[emit_pos_]));
  ++emit_pos_;
  return true;
}

// ---------------------------------------------------------------------------
// PartitionOp
// ---------------------------------------------------------------------------

bool PartitionOp::Next(Tuple* out) {
  if (!partitioned_) {
    timer_.Bind(ctx_->stats, timer_key_);
    ScopedPhase phase(&timer_);
    bool have_parts = false;
    auto ensure_parts = [&](const Schema& schema) {
      if (have_parts) return;
      for (int p = 0; p < spec_.fanout(); ++p) {
        parts_.push_back(RowVector::Make(schema));
      }
      have_parts = true;
    };
    if (ctx_->options.enable_vectorized) {
      RowBatch batch;
      while (child(0)->NextBatch(&batch)) {
        if (batch.empty()) continue;
        ensure_parts(batch.schema());
        ScatterSpan(batch.data(), batch.size(), batch.schema(), spec_,
                    key_col_, &parts_);
      }
    } else {
      Tuple t;
      while (child(0)->Next(&t)) {
        const Item& item = t[0];
        if (item.is_collection()) {
          ensure_parts(item.collection()->schema());
          ScatterRows(*item.collection(), spec_, key_col_, &parts_);
        } else if (item.is_row()) {
          ensure_parts(item.row().schema());
          uint32_t pid = spec_.PartitionOf(KeyAt(item.row(), key_col_));
          parts_[pid]->AppendRaw(item.row().data());
        } else {
          return Fail(Status::InvalidArgument(
              "Partition expects rows or collections, got " +
              item.ToString()));
        }
      }
    }
    if (!child(0)->status().ok()) return Fail(child(0)->status());
    if (!have_parts) {
      for (int p = 0; p < spec_.fanout(); ++p) {
        parts_.push_back(RowVector::Make(KeyValueSchema()));
      }
    }
    partitioned_ = true;
  }
  if (emit_pos_ >= parts_.size()) return false;
  out->clear();
  out->push_back(Item(static_cast<int64_t>(emit_pos_)));
  out->push_back(Item(parts_[emit_pos_]));
  ++emit_pos_;
  return true;
}

}  // namespace modularis
