#include "suboperators/partition_ops.h"

#include <limits>

namespace modularis {

Schema HistogramSchema() {
  return Schema({Field::I64("count")});
}

namespace {

/// Reads the i64 key at a fixed byte offset of a packed row (covers i64
/// and, via the i32 variant, date/int32 keys).
inline int64_t LoadKey(const uint8_t* row, uint32_t offset, bool wide) {
  if (wide) {
    int64_t k;
    std::memcpy(&k, row + offset, sizeof(k));
    return k;
  }
  int32_t k;
  std::memcpy(&k, row + offset, sizeof(k));
  return k;
}

struct KeyLayout {
  uint32_t offset;
  bool wide;
};

KeyLayout KeyLayoutOf(const Schema& schema, int key_col) {
  return KeyLayout{schema.offset(key_col),
                   schema.field(key_col).type == AtomType::kInt64};
}

}  // namespace

void CountSpan(const uint8_t* rows, size_t n, const Schema& schema,
               const RadixSpec& spec, int key_col, int64_t* counts) {
  const KeyLayout kl = KeyLayoutOf(schema, key_col);
  const uint32_t stride = schema.row_size();
  const uint8_t* p = rows;
  for (size_t i = 0; i < n; ++i, p += stride) {
    ++counts[spec.PartitionOf(LoadKey(p, kl.offset, kl.wide))];
  }
}

void CountRows(const RowVector& rows, const RadixSpec& spec, int key_col,
               int64_t* counts) {
  CountSpan(rows.data(), rows.size(), rows.schema(), spec, key_col, counts);
}

void ScatterSpan(const uint8_t* rows, size_t n, const Schema& schema,
                 const RadixSpec& spec, int key_col,
                 std::vector<RowVectorPtr>* parts) {
  const KeyLayout kl = KeyLayoutOf(schema, key_col);
  const uint32_t stride = schema.row_size();
  const uint8_t* p = rows;
  for (size_t i = 0; i < n; ++i, p += stride) {
    uint32_t pid = spec.PartitionOf(LoadKey(p, kl.offset, kl.wide));
    (*parts)[pid]->AppendRaw(p);
  }
}

void ScatterRows(const RowVector& rows, const RadixSpec& spec, int key_col,
                 std::vector<RowVectorPtr>* parts) {
  ScatterSpan(rows.data(), rows.size(), rows.schema(), spec, key_col, parts);
}

void ScatterSpanPresizedWc(const uint8_t* rows, size_t n,
                           const Schema& schema, const RadixSpec& spec,
                           int key_col, std::vector<RowVectorPtr>* parts,
                           std::vector<size_t>* cursors) {
  const KeyLayout kl = KeyLayoutOf(schema, key_col);
  const uint32_t stride = schema.row_size();
  const int fanout = spec.fanout();
  // ~512B of staging per partition: large enough that flushes amortize
  // the random partition access, small enough that fanout * buffer stays
  // cache-resident per worker.
  size_t wc_rows = 512 / stride;
  if (wc_rows < 4) wc_rows = 4;
  std::vector<uint8_t> stage(static_cast<size_t>(fanout) * wc_rows * stride);
  std::vector<uint32_t> fill(fanout, 0);
  const size_t buf_bytes = wc_rows * stride;
  const uint8_t* p = rows;
  for (size_t i = 0; i < n; ++i, p += stride) {
    uint32_t pid = spec.PartitionOf(LoadKey(p, kl.offset, kl.wide));
    uint8_t* buf = stage.data() + pid * buf_bytes;
    std::memcpy(buf + fill[pid] * stride, p, stride);
    if (++fill[pid] == wc_rows) {
      std::memcpy((*parts)[pid]->mutable_row((*cursors)[pid]), buf,
                  buf_bytes);
      (*cursors)[pid] += wc_rows;
      fill[pid] = 0;
    }
  }
  for (int pid = 0; pid < fanout; ++pid) {
    if (fill[pid] == 0) continue;
    std::memcpy((*parts)[pid]->mutable_row((*cursors)[pid]),
                stage.data() + pid * buf_bytes, fill[pid] * stride);
    (*cursors)[pid] += fill[pid];
  }
}

void ScatterSpanByPidWc(const uint8_t* rows, size_t n, uint32_t stride,
                        const uint8_t* pids, int fanout, size_t base_index,
                        uint8_t* dst_rows, uint32_t* dst_idx,
                        std::vector<size_t>* cursors) {
  // Same ~512B-per-partition staging discipline as ScatterSpanPresizedWc;
  // the original-row indices ride along in a parallel staging array so
  // both flush as bursts.
  size_t wc_rows = 512 / stride;
  if (wc_rows < 4) wc_rows = 4;
  std::vector<uint8_t> stage(static_cast<size_t>(fanout) * wc_rows * stride);
  std::vector<uint32_t> istage(static_cast<size_t>(fanout) * wc_rows);
  std::vector<uint32_t> fill(fanout, 0);
  const size_t buf_bytes = wc_rows * stride;
  const uint8_t* p = rows;
  for (size_t i = 0; i < n; ++i, p += stride) {
    const uint32_t pid = pids[i];
    uint8_t* buf = stage.data() + pid * buf_bytes;
    std::memcpy(buf + fill[pid] * stride, p, stride);
    istage[pid * wc_rows + fill[pid]] = static_cast<uint32_t>(base_index + i);
    if (++fill[pid] == wc_rows) {
      size_t& cur = (*cursors)[pid];
      std::memcpy(dst_rows + cur * stride, buf, buf_bytes);
      if (dst_idx != nullptr) {
        std::memcpy(dst_idx + cur, istage.data() + pid * wc_rows,
                    wc_rows * sizeof(uint32_t));
      }
      cur += wc_rows;
      fill[pid] = 0;
    }
  }
  for (int pid = 0; pid < fanout; ++pid) {
    if (fill[pid] == 0) continue;
    size_t& cur = (*cursors)[pid];
    std::memcpy(dst_rows + cur * stride, stage.data() + pid * buf_bytes,
                fill[pid] * stride);
    if (dst_idx != nullptr) {
      std::memcpy(dst_idx + cur, istage.data() + pid * wc_rows,
                  fill[pid] * sizeof(uint32_t));
    }
    cur += fill[pid];
  }
}

Status ScatterSpanPresized(const uint8_t* rows, size_t n,
                           const Schema& schema, const RadixSpec& spec,
                           int key_col, std::vector<RowVectorPtr>* parts,
                           std::vector<size_t>* cursors) {
  const KeyLayout kl = KeyLayoutOf(schema, key_col);
  const uint32_t stride = schema.row_size();
  const uint8_t* p = rows;
  for (size_t i = 0; i < n; ++i, p += stride) {
    uint32_t pid = spec.PartitionOf(LoadKey(p, kl.offset, kl.wide));
    size_t& cursor = (*cursors)[pid];
    RowVector& part = *(*parts)[pid];
    if (cursor >= part.size()) {
      return Status::InvalidArgument(
          "presized scatter: partition " + std::to_string(pid) +
          " overflows its histogram count " + std::to_string(part.size()));
    }
    std::memcpy(part.mutable_row(cursor), p, stride);
    ++cursor;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// LocalHistogram
// ---------------------------------------------------------------------------

Status LocalHistogram::CountParallel(std::vector<int64_t>* counts) {
  // Materialize the record stream as one packed span (zero-copy when the
  // upstream hands a single durable collection, the hot case) and count
  // dynamically claimed morsels into per-worker histograms; the sum-merge
  // is order-insensitive, so the dynamic schedule costs no determinism.
  RowVectorPtr input;
  MODULARIS_RETURN_NOT_OK(DrainRecordStream(child(0), &input));
  if (input == nullptr) return Status::OK();
  const size_t n = input->size();
  int workers = PlanWorkers(n, ctx_->options);
  if (workers <= 1) {
    CountRows(*input, spec_, key_col_, counts->data());
    return Status::OK();
  }
  const uint32_t stride = input->row_size();
  std::vector<std::vector<int64_t>> worker_counts(
      workers, std::vector<int64_t>(spec_.fanout(), 0));
  MorselCursor cursor(n, ctx_->options.morsel_rows, ctx_->cancel);
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
    size_t begin = 0, count = 0;
    while (cursor.Claim(&begin, &count)) {
      CountSpan(input->data() + begin * stride, count, input->schema(),
                spec_, key_col_, worker_counts[w].data());
    }
    return Status::OK();
  }));
  for (const std::vector<int64_t>& wc : worker_counts) {
    for (int p = 0; p < spec_.fanout(); ++p) (*counts)[p] += wc[p];
  }
  return Status::OK();
}

bool LocalHistogram::Next(Tuple* out) {
  if (done_) return false;
  std::vector<int64_t> counts(spec_.fanout(), 0);
  timer_.Bind(ctx_->stats, timer_key_);
  if (ctx_->options.enable_vectorized &&
      ctx_->options.ResolvedNumThreads() > 1) {
    ScopedPhase phase(&timer_);
    Status st = CountParallel(&counts);
    if (!st.ok()) return Fail(std::move(st));
  } else if (ctx_->options.enable_vectorized) {
    // Batched drain: every batch is counted in one packed loop,
    // regardless of whether the upstream streams records or hands whole
    // collections.
    ScopedPhase phase(&timer_);
    RowBatch batch;
    while (child(0)->NextBatch(&batch)) {
      CountSpan(batch.data(), batch.size(), batch.schema(), spec_, key_col_,
                counts.data());
    }
  } else {
    if (ctx_->options.ResolvedNumThreads() > 1) {
      // Row-at-a-time streams have no packed span to split into morsels.
      NoteSerialFallback(ctx_, "LocalHistogram");
    }
    ScopedPhase phase(&timer_);
    Tuple t;
    while (child(0)->Next(&t)) {
      const Item& item = t[0];
      if (item.is_collection()) {
        CountRows(*item.collection(), spec_, key_col_, counts.data());
      } else if (item.is_row()) {
        ++counts[spec_.PartitionOf(KeyAt(item.row(), key_col_))];
      } else {
        return Fail(Status::InvalidArgument(
            "LocalHistogram expects rows or collections, got " +
            item.ToString()));
      }
    }
  }
  if (!child(0)->status().ok()) return Fail(child(0)->status());
  RowVectorPtr hist = RowVector::Make(HistogramSchema());
  hist->Reserve(counts.size());
  for (int64_t c : counts) {
    hist->AppendRow().SetInt64(0, c);
  }
  done_ = true;
  out->clear();
  out->push_back(Item(std::move(hist)));
  return true;
}

namespace {

/// Validates one histogram partition count before it is cast to size_t
/// and turned into an allocation. The histogram arrives over the
/// exchange, so it is untrusted input: a corrupted negative value would
/// wrap to a multi-exabyte size_t, and even a positive count beyond the
/// uint32 row-index space the operators use cannot be a real partition.
/// Either one is a protocol violation (kInternal), not a planner error.
Status CheckedHistCount(int64_t count, int pid, size_t* out) {
  if (count < 0 ||
      count > static_cast<int64_t>(std::numeric_limits<uint32_t>::max())) {
    return Status::Internal("LocalPartition: histogram count " +
                            std::to_string(count) + " for partition " +
                            std::to_string(pid) +
                            " is outside the valid row range");
  }
  *out = static_cast<size_t>(count);
  return Status::OK();
}

/// The shared two-phase parallel scatter skeleton: per-worker counts over
/// static contiguous ranges (which replay the input order), then
/// per-(worker, partition) write offsets as the prefix sums across
/// workers, then every worker scatters its range through write-combining
/// buffers into its private, contiguous region of each partition.
struct RangedScatterPlan {
  std::vector<size_t> bounds;                      // worker row ranges
  std::vector<std::vector<int64_t>> worker_counts;  // [worker][partition]
  std::vector<int64_t> totals;                      // per-partition rows
};

Status CountRanges(const RowVector& input, const RadixSpec& spec, int key_col,
                   int workers, RangedScatterPlan* plan) {
  const uint32_t stride = input.row_size();
  plan->bounds = SplitRows(input.size(), workers);
  plan->worker_counts.assign(workers,
                             std::vector<int64_t>(spec.fanout(), 0));
  MODULARIS_RETURN_NOT_OK(ParallelFor(workers, [&](int w) -> Status {
    CountSpan(input.data() + plan->bounds[w] * stride,
              plan->bounds[w + 1] - plan->bounds[w], input.schema(), spec,
              key_col, plan->worker_counts[w].data());
    return Status::OK();
  }));
  plan->totals.assign(spec.fanout(), 0);
  for (int p = 0; p < spec.fanout(); ++p) {
    for (int w = 0; w < workers; ++w) {
      plan->totals[p] += plan->worker_counts[w][p];
    }
  }
  return Status::OK();
}

Status ScatterRanges(const RowVector& input, const RadixSpec& spec,
                     int key_col, const RangedScatterPlan& plan,
                     std::vector<RowVectorPtr>* parts) {
  const int workers = static_cast<int>(plan.worker_counts.size());
  const int fanout = spec.fanout();
  const uint32_t stride = input.row_size();
  std::vector<std::vector<size_t>> offsets(workers,
                                           std::vector<size_t>(fanout, 0));
  for (int p = 0; p < fanout; ++p) {
    size_t off = 0;
    for (int w = 0; w < workers; ++w) {
      offsets[w][p] = off;
      off += static_cast<size_t>(plan.worker_counts[w][p]);
    }
  }
  return ParallelFor(workers, [&](int w) -> Status {
    ScatterSpanPresizedWc(input.data() + plan.bounds[w] * stride,
                          plan.bounds[w + 1] - plan.bounds[w], input.schema(),
                          spec, key_col, parts, &offsets[w]);
    return Status::OK();
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// LocalPartition
// ---------------------------------------------------------------------------

Status LocalPartition::PartitionAllParallel(const RowVector& hist) {
  ScopedPhase phase(&timer_);
  RowVectorPtr input;
  MODULARIS_RETURN_NOT_OK(DrainRecordStream(child(0), &input));
  if (input == nullptr) {
    // Empty input: empty partitions, as in the serial vectorized path.
    for (int p = 0; p < spec_.fanout(); ++p) {
      parts_.push_back(RowVector::Make(KeyValueSchema()));
    }
    return Status::OK();
  }
  const size_t n = input->size();
  const Schema& schema = input->schema();
  const int fanout = spec_.fanout();
  const int workers = PlanWorkers(n, ctx_->options);

  // Exact allocation per partition from the histogram; every row is
  // overwritten by a full-stride copy below (count totals are verified
  // against the histogram first), so no zero-fill.
  for (int p = 0; p < fanout; ++p) {
    size_t rows_p = 0;
    MODULARIS_RETURN_NOT_OK(CheckedHistCount(hist.row(p).GetInt64(0), p,
                                             &rows_p));
    RowVectorPtr part = RowVector::Make(schema);
    part->ResizeRowsUninitialized(rows_p);
    parts_.push_back(std::move(part));
  }

  if (workers <= 1) {
    std::vector<size_t> cursors(fanout, 0);
    MODULARIS_RETURN_NOT_OK(ScatterSpanPresized(
        input->data(), n, schema, spec_, key_col_, &parts_, &cursors));
    for (int p = 0; p < fanout; ++p) {
      if (cursors[p] != parts_[p]->size()) {
        return Status::InvalidArgument(
            "LocalPartition: histogram count " +
            std::to_string(parts_[p]->size()) + " != scattered rows " +
            std::to_string(cursors[p]) + " for partition " +
            std::to_string(p));
      }
    }
    return Status::OK();
  }

  RangedScatterPlan plan;
  MODULARIS_RETURN_NOT_OK(CountRanges(*input, spec_, key_col_, workers,
                                      &plan));
  for (int p = 0; p < fanout; ++p) {
    if (plan.totals[p] != static_cast<int64_t>(parts_[p]->size())) {
      return Status::InvalidArgument(
          "LocalPartition: histogram count " +
          std::to_string(parts_[p]->size()) + " != scattered rows " +
          std::to_string(plan.totals[p]) + " for partition " +
          std::to_string(p));
    }
  }
  return ScatterRanges(*input, spec_, key_col_, plan, &parts_);
}

Status LocalPartition::PartitionAllVectorized(const RowVector& hist) {
  ScopedPhase phase(&timer_);
  std::vector<size_t> cursors;
  bool have_schema = false;
  RowBatch batch;
  while (child(0)->NextBatch(&batch)) {
    if (batch.empty()) continue;
    if (!have_schema) {
      have_schema = true;
      // Exact allocation per partition from the histogram prefix counts;
      // the scatter overwrites every row with a full-stride copy (the
      // cursor check below guarantees full coverage), so the rows need
      // no zero-fill.
      for (int p = 0; p < spec_.fanout(); ++p) {
        size_t rows_p = 0;
        MODULARIS_RETURN_NOT_OK(CheckedHistCount(hist.row(p).GetInt64(0), p,
                                                 &rows_p));
        RowVectorPtr part = RowVector::Make(batch.schema());
        part->ResizeRowsUninitialized(rows_p);
        parts_.push_back(std::move(part));
      }
      cursors.assign(spec_.fanout(), 0);
    }
    MODULARIS_RETURN_NOT_OK(ScatterSpanPresized(batch.data(), batch.size(),
                                                batch.schema(), spec_,
                                                key_col_, &parts_, &cursors));
  }
  MODULARIS_RETURN_NOT_OK(child(0)->status());
  if (!have_schema) {
    for (int p = 0; p < spec_.fanout(); ++p) {
      parts_.push_back(RowVector::Make(KeyValueSchema()));
    }
    return Status::OK();
  }
  for (int p = 0; p < spec_.fanout(); ++p) {
    if (cursors[p] != parts_[p]->size()) {
      return Status::InvalidArgument(
          "LocalPartition: histogram count " +
          std::to_string(parts_[p]->size()) + " != scattered rows " +
          std::to_string(cursors[p]) + " for partition " + std::to_string(p));
    }
  }
  return Status::OK();
}

Status LocalPartition::PartitionAll() {
  // Read the histogram to pre-size the output partitions exactly (the
  // radix-partitioning discipline of [58, 63] that makes the scatter a
  // single streaming pass).
  Tuple hist_tuple;
  if (!child(1)->Next(&hist_tuple)) {
    if (!child(1)->status().ok()) return child(1)->status();
    return Status::InvalidArgument("LocalPartition: missing histogram");
  }
  const RowVectorPtr& hist = hist_tuple[0].collection();
  if (static_cast<int>(hist->size()) != spec_.fanout()) {
    return Status::InvalidArgument(
        "LocalPartition: histogram size " + std::to_string(hist->size()) +
        " != fanout " + std::to_string(spec_.fanout()));
  }

  timer_.Bind(ctx_->stats, timer_key_);
  parts_.reserve(spec_.fanout());
  if (ctx_->options.enable_vectorized) {
    if (ctx_->options.ResolvedNumThreads() > 1) {
      return PartitionAllParallel(*hist);
    }
    return PartitionAllVectorized(*hist);
  }
  if (ctx_->options.ResolvedNumThreads() > 1) {
    NoteSerialFallback(ctx_, "LocalPartition");
  }

  ScopedPhase phase(&timer_);
  Schema data_schema;
  bool have_schema = false;

  // Collect input; reserve per-partition capacity on first sight of the
  // data schema.
  Tuple t;
  while (child(0)->Next(&t)) {
    const Item& item = t[0];
    if (item.is_collection()) {
      const RowVector& rows = *item.collection();
      if (!have_schema) {
        data_schema = rows.schema();
        have_schema = true;
        for (int p = 0; p < spec_.fanout(); ++p) {
          size_t rows_p = 0;
          MODULARIS_RETURN_NOT_OK(
              CheckedHistCount(hist->row(p).GetInt64(0), p, &rows_p));
          RowVectorPtr part = RowVector::Make(data_schema);
          part->Reserve(rows_p);
          parts_.push_back(std::move(part));
        }
      }
      ScatterRows(rows, spec_, key_col_, &parts_);
    } else if (item.is_row()) {
      const RowRef& row = item.row();
      if (!have_schema) {
        data_schema = row.schema();
        have_schema = true;
        for (int p = 0; p < spec_.fanout(); ++p) {
          size_t rows_p = 0;
          MODULARIS_RETURN_NOT_OK(
              CheckedHistCount(hist->row(p).GetInt64(0), p, &rows_p));
          RowVectorPtr part = RowVector::Make(data_schema);
          part->Reserve(rows_p);
          parts_.push_back(std::move(part));
        }
      }
      uint32_t pid = spec_.PartitionOf(KeyAt(row, key_col_));
      parts_[pid]->AppendRaw(row.data());
    } else {
      return Status::InvalidArgument(
          "LocalPartition expects rows or collections, got " +
          item.ToString());
    }
  }
  if (!child(0)->status().ok()) return child(0)->status();
  if (!have_schema) {
    // Empty input: emit empty partitions with a key/value placeholder
    // schema derived from nothing — use the histogram's count of zero.
    for (int p = 0; p < spec_.fanout(); ++p) {
      parts_.push_back(RowVector::Make(KeyValueSchema()));
    }
  }
  return Status::OK();
}

bool LocalPartition::Next(Tuple* out) {
  if (!partitioned_) {
    Status st = PartitionAll();
    if (!st.ok()) return Fail(st);
    partitioned_ = true;
  }
  if (emit_pos_ >= parts_.size()) return false;
  out->clear();
  out->push_back(Item(static_cast<int64_t>(emit_pos_)));
  out->push_back(Item(parts_[emit_pos_]));
  ++emit_pos_;
  return true;
}

// ---------------------------------------------------------------------------
// PartitionOp
// ---------------------------------------------------------------------------

Status PartitionOp::PartitionAllParallel(const RowVectorPtr& input,
                                         int workers) {
  RangedScatterPlan plan;
  MODULARIS_RETURN_NOT_OK(CountRanges(*input, spec_, key_col_, workers,
                                      &plan));
  // Counts come from the data itself, so the pre-sizing is exact by
  // construction and every uninitialized row gets overwritten.
  for (int p = 0; p < spec_.fanout(); ++p) {
    RowVectorPtr part = RowVector::Make(input->schema());
    part->ResizeRowsUninitialized(static_cast<size_t>(plan.totals[p]));
    parts_.push_back(std::move(part));
  }
  return ScatterRanges(*input, spec_, key_col_, plan, &parts_);
}

bool PartitionOp::Next(Tuple* out) {
  if (!partitioned_) {
    timer_.Bind(ctx_->stats, timer_key_);
    ScopedPhase phase(&timer_);
    bool have_parts = false;
    auto ensure_parts = [&](const Schema& schema) {
      if (have_parts) return;
      for (int p = 0; p < spec_.fanout(); ++p) {
        parts_.push_back(RowVector::Make(schema));
      }
      have_parts = true;
    };
    if (ctx_->options.enable_vectorized &&
        ctx_->options.ResolvedNumThreads() > 1) {
      RowVectorPtr input;
      Status st = DrainRecordStream(child(0), &input);
      if (!st.ok()) return Fail(std::move(st));
      if (input != nullptr && !input->empty()) {
        int workers = PlanWorkers(input->size(), ctx_->options);
        if (workers > 1) {
          st = PartitionAllParallel(input, workers);
          if (!st.ok()) return Fail(std::move(st));
          have_parts = true;
        } else {
          ensure_parts(input->schema());
          ScatterSpan(input->data(), input->size(), input->schema(), spec_,
                      key_col_, &parts_);
        }
      }
    } else if (ctx_->options.enable_vectorized) {
      RowBatch batch;
      while (child(0)->NextBatch(&batch)) {
        if (batch.empty()) continue;
        ensure_parts(batch.schema());
        ScatterSpan(batch.data(), batch.size(), batch.schema(), spec_,
                    key_col_, &parts_);
      }
    } else {
      if (ctx_->options.ResolvedNumThreads() > 1) {
        NoteSerialFallback(ctx_, "Partition");
      }
      Tuple t;
      while (child(0)->Next(&t)) {
        const Item& item = t[0];
        if (item.is_collection()) {
          ensure_parts(item.collection()->schema());
          ScatterRows(*item.collection(), spec_, key_col_, &parts_);
        } else if (item.is_row()) {
          ensure_parts(item.row().schema());
          uint32_t pid = spec_.PartitionOf(KeyAt(item.row(), key_col_));
          parts_[pid]->AppendRaw(item.row().data());
        } else {
          return Fail(Status::InvalidArgument(
              "Partition expects rows or collections, got " +
              item.ToString()));
        }
      }
    }
    if (!child(0)->status().ok()) return Fail(child(0)->status());
    if (!have_parts) {
      for (int p = 0; p < spec_.fanout(); ++p) {
        parts_.push_back(RowVector::Make(KeyValueSchema()));
      }
    }
    partitioned_ = true;
  }
  if (emit_pos_ >= parts_.size()) return false;
  out->clear();
  out->push_back(Item(static_cast<int64_t>(emit_pos_)));
  out->push_back(Item(parts_[emit_pos_]));
  ++emit_pos_;
  return true;
}

}  // namespace modularis
