#include "tpch/schema.h"

namespace modularis::tpch {

Schema LineitemSchema() {
  return Schema({
      Field::I64("l_orderkey"),
      Field::I64("l_partkey"),
      Field::I64("l_suppkey"),
      Field::I32("l_linenumber"),
      Field::F64("l_quantity"),
      Field::F64("l_extendedprice"),
      Field::F64("l_discount"),
      Field::F64("l_tax"),
      Field::Str("l_returnflag", 1),
      Field::Str("l_linestatus", 1),
      Field::Date("l_shipdate"),
      Field::Date("l_commitdate"),
      Field::Date("l_receiptdate"),
      Field::Str("l_shipinstruct", 25),
      Field::Str("l_shipmode", 10),
  });
}

Schema OrdersSchema() {
  return Schema({
      Field::I64("o_orderkey"),
      Field::I64("o_custkey"),
      Field::Str("o_orderstatus", 1),
      Field::F64("o_totalprice"),
      Field::Date("o_orderdate"),
      Field::Str("o_orderpriority", 15),
      Field::I32("o_shippriority"),
  });
}

Schema CustomerSchema() {
  return Schema({
      Field::I64("c_custkey"),
      Field::Str("c_name", 25),
      Field::Str("c_mktsegment", 10),
      Field::I32("c_nationkey"),
  });
}

Schema PartSchema() {
  return Schema({
      Field::I64("p_partkey"),
      Field::Str("p_brand", 10),
      Field::Str("p_type", 25),
      Field::I32("p_size"),
      Field::Str("p_container", 10),
  });
}

Schema SupplierSchema() {
  return Schema({
      Field::I64("s_suppkey"),
      Field::Str("s_name", 25),
      Field::I32("s_nationkey"),
  });
}

Schema NationSchema() {
  return Schema({
      Field::I32("n_nationkey"),
      Field::Str("n_name", 25),
      Field::I32("n_regionkey"),
  });
}

Schema RegionSchema() {
  return Schema({
      Field::I32("r_regionkey"),
      Field::Str("r_name", 25),
  });
}

Schema PartsuppSchema() {
  return Schema({
      Field::I64("ps_partkey"),
      Field::I64("ps_suppkey"),
      Field::I32("ps_availqty"),
      Field::F64("ps_supplycost"),
  });
}

}  // namespace modularis::tpch
