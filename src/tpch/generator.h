#ifndef MODULARIS_TPCH_GENERATOR_H_
#define MODULARIS_TPCH_GENERATOR_H_

#include <cstdint>

#include "tpch/schema.h"

/// \file generator.h
/// Deterministic scaled-down dbgen substitute (DESIGN.md §1). Row counts,
/// value domains, date windows and categorical distributions follow the
/// TPC-H specification so that the evaluated queries keep their
/// selectivities and group cardinalities; text fields are synthesized from
/// the spec's category grammars. The same seed always produces the same
/// database.

namespace modularis::tpch {

struct GeneratorOptions {
  /// TPC-H scale factor. SF 1 ≈ 6M lineitem rows; benches default to a
  /// fraction of that (the paper runs SF 500 on 8 machines).
  double scale_factor = 0.01;
  uint64_t seed = 42;
};

/// Generates all eight tables.
TpchTables GenerateTpch(const GeneratorOptions& options);

/// Row counts at a given scale factor (before lineitem's per-order fanout).
int64_t NumOrders(double sf);
int64_t NumCustomers(double sf);
int64_t NumParts(double sf);
int64_t NumSuppliers(double sf);

}  // namespace modularis::tpch

#endif  // MODULARIS_TPCH_GENERATOR_H_
