#include "tpch/queries.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "planner/passes.h"
#include "plans/common.h"
#include "storage/csv.h"
#include "suboperators/agg_ops.h"

namespace modularis::tpch {

namespace lp = planner::lp;
using planner::LogicalPlanPtr;

const char* PlatformName(Platform platform) {
  switch (platform) {
    case Platform::kRdma: return "rdma";
    case Platform::kRdmaDisc: return "rdma+disc";
    case Platform::kLambda: return "lambda";
    case Platform::kS3Select: return "s3select";
  }
  return "?";
}

TpchRunOptions TpchRunOptions::Rdma(int ranks, bool with_disc) {
  TpchRunOptions o;
  o.platform = with_disc ? Platform::kRdmaDisc : Platform::kRdma;
  o.world_size = ranks;
  o.storage = storage::BlobClientOptions::Nfs();
  return o;
}

TpchRunOptions TpchRunOptions::Lambda(int workers) {
  TpchRunOptions o;
  o.platform = Platform::kLambda;
  o.world_size = workers;
  o.lambda.num_workers = workers;
  o.storage = storage::BlobClientOptions::S3();
  return o;
}

TpchRunOptions TpchRunOptions::S3Select(int workers) {
  TpchRunOptions o = Lambda(workers);
  o.platform = Platform::kS3Select;
  return o;
}

namespace {

enum TableId { kLineitem = 0, kOrdersT = 1, kCustomerT = 2, kPartT = 3 };

Schema FullSchema(int table) {
  switch (table) {
    case kLineitem: return LineitemSchema();
    case kOrdersT: return OrdersSchema();
    case kCustomerT: return CustomerSchema();
    case kPartT: return PartSchema();
  }
  return Schema();
}

const char* TableName(int table) {
  switch (table) {
    case kLineitem: return "lineitem";
    case kOrdersT: return "orders";
    case kCustomerT: return "customer";
    case kPartT: return "part";
  }
  return "?";
}

AggSpec SumF64(ExprPtr in, std::string name) {
  return AggSpec{AggKind::kSum, std::move(in), std::move(name),
                 AtomType::kFloat64};
}
AggSpec SumI64(ExprPtr in, std::string name) {
  return AggSpec{AggKind::kSum, std::move(in), std::move(name),
                 AtomType::kInt64};
}
AggSpec CountStar(std::string name) {
  return AggSpec{AggKind::kCount, nullptr, std::move(name), AtomType::kInt64};
}

int32_t Date(int y, int m, int d) { return DateFromYMD(y, m, d); }

// ---------------------------------------------------------------------------
// Query definitions (logical plans over the full table schemas)
// ---------------------------------------------------------------------------

LogicalPlanPtr ScanTable(int table) {
  return lp::Scan(table, TableName(table), FullSchema(table));
}

/// Authoring override of the Join::broadcast_ok default. Only consulted
/// when no catalog is available (the join-order pass recomputes the flag
/// from cardinality estimates otherwise).
LogicalPlanPtr NoBroadcast(const LogicalPlanPtr& join) {
  auto m = std::make_shared<planner::LogicalPlan>(*join);
  m->broadcast_ok = false;
  return m;
}

LogicalPlanPtr Q1Logical() {
  // The cutoff stays an expression — DATE '1998-12-01' - 90: constant
  // folding reduces it to a literal, which is what lets the scan extract
  // a shipdate pruning range from the pushed-down predicate.
  ExprPtr cutoff =
      ex::Sub(ex::Lit(int64_t{Date(1998, 12, 1)}), ex::Lit(int64_t{90}));
  auto li = lp::Filter(ScanTable(kLineitem),
                       ex::Le(ex::Col(l::kShipDate), cutoff));
  // disc_price = price * (1 - disc); charge = disc_price * (1 + tax).
  ExprPtr disc_price = ex::Mul(ex::Col(l::kExtendedPrice),
                               ex::Sub(ex::Lit(1.0), ex::Col(l::kDiscount)));
  ExprPtr charge =
      ex::Mul(ex::Mul(ex::Col(l::kExtendedPrice),
                      ex::Sub(ex::Lit(1.0), ex::Col(l::kDiscount))),
              ex::Add(ex::Lit(1.0), ex::Col(l::kTax)));
  auto agg = lp::Aggregate(li, {l::kReturnFlag, l::kLineStatus},
                           {SumF64(ex::Col(l::kQuantity), "sum_qty"),
                            SumF64(ex::Col(l::kExtendedPrice),
                                   "sum_base_price"),
                            SumF64(disc_price, "sum_disc_price"),
                            SumF64(charge, "sum_charge"),
                            CountStar("count_order")});
  return lp::Sort(agg, {{0, false}, {1, false}});
}

LogicalPlanPtr Q3Logical() {
  const int64_t date = Date(1995, 3, 15);
  auto cust = lp::Filter(
      ScanTable(kCustomerT),
      ex::Eq(ex::Col(c::kMktSegment), ex::Lit(std::string("BUILDING"))));
  auto ord = lp::Filter(ScanTable(kOrdersT),
                        ex::Lt(ex::Col(o::kOrderDate), ex::Lit(date)));
  auto li = lp::Filter(ScanTable(kLineitem),
                       ex::Gt(ex::Col(l::kShipDate), ex::Lit(date)));

  // customer ⋈ orders on custkey; concat columns: customer then orders.
  const int nc = CustomerSchema().num_fields();
  Schema j1s({Field::I64("o_orderkey"), Field::Date("o_orderdate"),
              Field::I32("o_shippriority")});
  auto j1 = lp::Project(
      lp::Join(cust, ord, JoinType::kInner, c::kCustKey, o::kCustKey),
      {MapOutput::Pass(nc + o::kOrderKey), MapOutput::Pass(nc + o::kOrderDate),
       MapOutput::Pass(nc + o::kShipPriority)},
      j1s);

  // (customer ⋈ orders) ⋈ lineitem on orderkey, computing revenue.
  Schema j2s({Field::I64("l_orderkey"), Field::Date("o_orderdate"),
              Field::I32("o_shippriority"), Field::F64("revenue")});
  auto j2 = lp::Project(
      lp::Join(j1, li, JoinType::kInner, 0, l::kOrderKey),
      {MapOutput::Pass(0), MapOutput::Pass(1), MapOutput::Pass(2),
       MapOutput::Compute(
           ex::Mul(ex::Col(3 + l::kExtendedPrice),
                   ex::Sub(ex::Lit(1.0), ex::Col(3 + l::kDiscount))))},
      j2s);

  auto agg = lp::Aggregate(j2, {0, 1, 2}, {SumF64(ex::Col(3), "revenue")});
  auto fin = lp::Project(agg,
                         {MapOutput::Pass(0), MapOutput::Pass(3),
                          MapOutput::Pass(1), MapOutput::Pass(2)},
                         Q3OutSchema());
  return lp::Limit(lp::Sort(fin, {{1, true}, {2, false}, {0, false}}), 10);
}

LogicalPlanPtr Q4Logical() {
  const int64_t lo = Date(1993, 7, 1);
  const int64_t hi = AddMonths(static_cast<int32_t>(lo), 3);
  auto ord = lp::Filter(
      ScanTable(kOrdersT),
      ex::And(ex::Ge(ex::Col(o::kOrderDate), ex::Lit(lo)),
              ex::Lt(ex::Col(o::kOrderDate), ex::Lit(hi))));
  auto li = lp::Filter(ScanTable(kLineitem),
                       ex::Lt(ex::Col(l::kCommitDate),
                              ex::Col(l::kReceiptDate)));

  // EXISTS: orders ⋉ late lineitems on orderkey (semi join — one of the
  // §3.4 BuildProbe variants). The build side is lineitem-sized, so
  // broadcasting it would be a mistake; the cost pass reaches the same
  // verdict from the estimates.
  auto semi = NoBroadcast(
      lp::Join(li, ord, JoinType::kSemi, l::kOrderKey, o::kOrderKey));
  auto agg =
      lp::Aggregate(semi, {o::kOrderPriority}, {CountStar("order_count")});
  return lp::Sort(agg, {{0, false}});
}

LogicalPlanPtr Q6Logical() {
  const int64_t lo = Date(1994, 1, 1);
  const int64_t hi = Date(1995, 1, 1);
  auto li = lp::Filter(
      ScanTable(kLineitem),
      ex::And({ex::Ge(ex::Col(l::kShipDate), ex::Lit(lo)),
               ex::Lt(ex::Col(l::kShipDate), ex::Lit(hi)),
               ex::Ge(ex::Col(l::kDiscount), ex::Lit(0.05 - 1e-9)),
               ex::Le(ex::Col(l::kDiscount), ex::Lit(0.07 + 1e-9)),
               ex::Lt(ex::Col(l::kQuantity), ex::Lit(24.0))}));
  return lp::Aggregate(li, {},
                       {SumF64(ex::Mul(ex::Col(l::kExtendedPrice),
                                       ex::Col(l::kDiscount)),
                               "revenue")});
}

LogicalPlanPtr Q12Logical() {
  const int64_t lo = Date(1994, 1, 1);
  const int64_t hi = Date(1995, 1, 1);
  auto li = lp::Filter(
      ScanTable(kLineitem),
      ex::And({ex::InStr(ex::Col(l::kShipMode), {"MAIL", "SHIP"}),
               ex::Lt(ex::Col(l::kCommitDate), ex::Col(l::kReceiptDate)),
               ex::Lt(ex::Col(l::kShipDate), ex::Col(l::kCommitDate)),
               ex::Ge(ex::Col(l::kReceiptDate), ex::Lit(lo)),
               ex::Lt(ex::Col(l::kReceiptDate), ex::Lit(hi))}));
  auto ord = ScanTable(kOrdersT);

  // lineitem' ⋈ orders on orderkey; classify priority (Fig. 6's plan).
  const int nl = LineitemSchema().num_fields();
  ExprPtr is_high =
      ex::InStr(ex::Col(nl + o::kOrderPriority), {"1-URGENT", "2-HIGH"});
  Schema js({Field::Str("l_shipmode", 10), Field::I64("high"),
             Field::I64("low")});
  auto j = lp::Project(
      lp::Join(li, ord, JoinType::kInner, l::kOrderKey, o::kOrderKey),
      {MapOutput::Pass(l::kShipMode),
       MapOutput::Compute(ex::If(is_high, ex::Lit(int64_t{1}),
                                 ex::Lit(int64_t{0}))),
       MapOutput::Compute(ex::If(is_high, ex::Lit(int64_t{0}),
                                 ex::Lit(int64_t{1})))},
      js);

  auto agg = lp::Aggregate(j, {0},
                           {SumI64(ex::Col(1), "high_line_count"),
                            SumI64(ex::Col(2), "low_line_count")});
  return lp::Sort(agg, {{0, false}});
}

LogicalPlanPtr Q14Logical() {
  const int64_t lo = Date(1995, 9, 1);
  const int64_t hi = AddMonths(static_cast<int32_t>(lo), 1);
  auto li = lp::Filter(
      ScanTable(kLineitem),
      ex::And(ex::Ge(ex::Col(l::kShipDate), ex::Lit(lo)),
              ex::Lt(ex::Col(l::kShipDate), ex::Lit(hi))));
  auto part = ScanTable(kPartT);

  // lineitem' ⋈ part on partkey; conditional promo revenue (the UDF-ish
  // Map the paper singles out in §5.1.1).
  const int nl = LineitemSchema().num_fields();
  ExprPtr rev = ex::Mul(ex::Col(l::kExtendedPrice),
                        ex::Sub(ex::Lit(1.0), ex::Col(l::kDiscount)));
  Schema js({Field::F64("promo_rev"), Field::F64("rev")});
  auto j = lp::Project(
      lp::Join(li, part, JoinType::kInner, l::kPartKey, p::kPartKey),
      {MapOutput::Compute(ex::If(ex::Like(ex::Col(nl + p::kType), "PROMO%"),
                                 rev, ex::Lit(0.0))),
       MapOutput::Compute(rev)},
      js);

  auto agg = lp::Aggregate(
      j, {}, {SumF64(ex::Col(0), "promo"), SumF64(ex::Col(1), "total")});
  return lp::Project(agg,
                     {MapOutput::Compute(ex::Mul(
                         ex::Lit(100.0), ex::Div(ex::Col(0), ex::Col(1))))},
                     Q14OutSchema());
}

LogicalPlanPtr Q18Logical() {
  auto li = ScanTable(kLineitem);
  // High-cardinality aggregation with HAVING sum(qty) > 300.
  auto big = lp::Aggregate(li, {l::kOrderKey},
                           {SumF64(ex::Col(l::kQuantity), "sum_qty")},
                           ex::Gt(ex::Col(1), ex::Lit(300.0)));
  auto ord = ScanTable(kOrdersT);

  // big ⋈ orders on orderkey; concat columns: big ⟨key, sum_qty⟩ then
  // orders.
  Schema j1s({Field::I64("o_custkey"), Field::I64("o_orderkey"),
              Field::Date("o_orderdate"), Field::F64("o_totalprice"),
              Field::F64("sum_qty")});
  auto j1 = lp::Project(
      lp::Join(big, ord, JoinType::kInner, 0, o::kOrderKey),
      {MapOutput::Pass(2 + o::kCustKey), MapOutput::Pass(0),
       MapOutput::Pass(2 + o::kOrderDate), MapOutput::Pass(2 + o::kTotalPrice),
       MapOutput::Pass(1)},
      j1s);

  auto cust = ScanTable(kCustomerT);
  const int nc = CustomerSchema().num_fields();
  // customer ⋈ j1 on custkey → final Q18 rows.
  auto j2 = lp::Project(
      lp::Join(cust, j1, JoinType::kInner, c::kCustKey, 0),
      {MapOutput::Pass(c::kName), MapOutput::Pass(c::kCustKey),
       MapOutput::Pass(nc + 1), MapOutput::Pass(nc + 2),
       MapOutput::Pass(nc + 3), MapOutput::Pass(nc + 4)},
      Q18OutSchema());
  return lp::Limit(lp::Sort(j2, {{4, true}, {3, false}, {2, false}}), 100);
}

LogicalPlanPtr Q19Logical() {
  auto li = lp::Filter(
      ScanTable(kLineitem),
      ex::And({ex::InStr(ex::Col(l::kShipMode), {"AIR", "REG AIR"}),
               ex::Eq(ex::Col(l::kShipInstruct),
                      ex::Lit(std::string("DELIVER IN PERSON"))),
               ex::Ge(ex::Col(l::kQuantity), ex::Lit(1.0)),
               ex::Le(ex::Col(l::kQuantity), ex::Lit(30.0))}));
  auto part = lp::Filter(
      ScanTable(kPartT),
      ex::And({ex::InStr(ex::Col(p::kBrand),
                         {"Brand#12", "Brand#23", "Brand#34"}),
               ex::Ge(ex::Col(p::kSize), ex::Lit(int64_t{1})),
               ex::Le(ex::Col(p::kSize), ex::Lit(int64_t{15}))}));

  // Disjunctive predicate over the joined record; every branch touches
  // both sides, so it stays a residual above the join. The columns are
  // full-concat indices (lineitem then part); the authored build side is
  // lineitem — the cost pass flips it to the far smaller part' side.
  const int nl = LineitemSchema().num_fields();
  auto branch = [nl](const char* brand, std::vector<std::string> containers,
                     double qlo, double qhi, int64_t smax) {
    return ex::And({ex::Eq(ex::Col(nl + p::kBrand),
                           ex::Lit(std::string(brand))),
                    ex::InStr(ex::Col(nl + p::kContainer),
                              std::move(containers)),
                    ex::Ge(ex::Col(l::kQuantity), ex::Lit(qlo)),
                    ex::Le(ex::Col(l::kQuantity), ex::Lit(qhi)),
                    ex::Le(ex::Col(nl + p::kSize), ex::Lit(smax))});
  };
  ExprPtr predicate = ex::Or(
      {branch("Brand#12", {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11,
              5),
       branch("Brand#23", {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10,
              20, 10),
       branch("Brand#34", {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30,
              15)});

  Schema js({Field::F64("rev")});
  auto j = lp::Project(
      lp::Filter(lp::Join(li, part, JoinType::kInner, l::kPartKey,
                          p::kPartKey),
                 predicate),
      {MapOutput::Compute(
          ex::Mul(ex::Col(l::kExtendedPrice),
                  ex::Sub(ex::Lit(1.0), ex::Col(l::kDiscount))))},
      js);
  return lp::Aggregate(j, {}, {SumF64(ex::Col(0), "revenue")});
}

std::atomic<uint64_t> g_run_counter{0};

/// Adapter installing a per-rank storage client into the ExecContext
/// before opening the wrapped plan (the RDMA-with-disc configuration
/// reads base tables through an NFS-profile client).
class WithBlobClient : public SubOperator {
 public:
  WithBlobClient(SubOpPtr inner, storage::BlobStore* store,
                 storage::BlobClientOptions profile)
      : SubOperator("WithBlobClient"),
        inner_(std::move(inner)),
        store_(store),
        profile_(std::move(profile)) {}

  Status Open(ExecContext* ctx) override {
    ctx_ = ctx;
    status_ = Status::OK();
    client_ = std::make_unique<storage::BlobClient>(store_, profile_,
                                                    ctx->rank);
    ctx->blob = client_.get();
    return inner_->Open(ctx);
  }
  bool Next(Tuple* out) override {
    if (inner_->Next(out)) return true;
    if (!inner_->status().ok()) return Fail(inner_->status());
    return false;
  }
  Status Close() override { return inner_->Close(); }

 private:
  SubOpPtr inner_;
  storage::BlobStore* store_;
  storage::BlobClientOptions profile_;
  std::unique_ptr<storage::BlobClient> client_;
};

planner::ScanLeafKind ScanLeafFor(Platform platform) {
  switch (platform) {
    case Platform::kRdma: return planner::ScanLeafKind::kMemoryRows;
    case Platform::kRdmaDisc:
    case Platform::kLambda: return planner::ScanLeafKind::kColumnFile;
    case Platform::kS3Select: return planner::ScanLeafKind::kS3Select;
  }
  return planner::ScanLeafKind::kMemoryRows;
}

planner::LoweringContext MakeLoweringContext(const TpchPlanEnv& env,
                                             StatsRegistry* stats) {
  planner::LoweringContext lctx;
  lctx.scan_leaf = ScanLeafFor(env.platform);
  lctx.serverless = env.serverless();
  lctx.fused = env.fused;
  lctx.world = env.world;
  lctx.exec = env.exec;
  lctx.tag = env.tag;
  lctx.stats = stats;
  return lctx;
}

}  // namespace

Result<LogicalPlanPtr> TpchLogicalPlan(int query) {
  switch (query) {
    case 1: return Q1Logical();
    case 3: return Q3Logical();
    case 4: return Q4Logical();
    case 6: return Q6Logical();
    case 12: return Q12Logical();
    case 14: return Q14Logical();
    case 18: return Q18Logical();
    case 19: return Q19Logical();
    default:
      return Status::InvalidArgument("unsupported TPC-H query " +
                                     std::to_string(query));
  }
}

planner::Catalog TpchCatalog(const std::array<size_t, kNumPlanTables>& rows) {
  using planner::ColumnStats;
  auto distinct = [](double d) {
    ColumnStats s;
    s.distinct = d;
    return s;
  };
  auto ranged = [](double d, double lo, double hi) {
    ColumnStats s;
    s.distinct = d;
    s.has_range = true;
    s.min = lo;
    s.max = hi;
    return s;
  };
  // TPC-H populations from the spec; dates span 1992-01-01..1998-12-31.
  const double date_lo = Date(1992, 1, 1);
  const double date_hi = Date(1998, 12, 31);
  const double days = date_hi - date_lo;
  ColumnStats dates = ranged(days, date_lo, date_hi);

  planner::Catalog cat;
  planner::TableStats li;
  li.rows = static_cast<double>(rows[kLineitem]);
  li.columns[l::kOrderKey] = distinct(static_cast<double>(rows[kOrdersT]));
  li.columns[l::kPartKey] = distinct(static_cast<double>(rows[kPartT]));
  li.columns[l::kQuantity] = ranged(50, 1, 50);
  li.columns[l::kDiscount] = ranged(11, 0.0, 0.10);
  li.columns[l::kReturnFlag] = distinct(3);
  li.columns[l::kLineStatus] = distinct(2);
  li.columns[l::kShipDate] = dates;
  li.columns[l::kCommitDate] = dates;
  li.columns[l::kReceiptDate] = dates;
  li.columns[l::kShipInstruct] = distinct(4);
  li.columns[l::kShipMode] = distinct(7);
  cat.tables[kLineitem] = li;

  planner::TableStats ord;
  ord.rows = static_cast<double>(rows[kOrdersT]);
  ord.columns[o::kOrderKey] = distinct(static_cast<double>(rows[kOrdersT]));
  ord.columns[o::kCustKey] = distinct(static_cast<double>(rows[kCustomerT]));
  ord.columns[o::kOrderStatus] = distinct(3);
  ord.columns[o::kOrderDate] = dates;
  ord.columns[o::kOrderPriority] = distinct(5);
  cat.tables[kOrdersT] = ord;

  planner::TableStats cust;
  cust.rows = static_cast<double>(rows[kCustomerT]);
  cust.columns[c::kCustKey] = distinct(static_cast<double>(rows[kCustomerT]));
  cust.columns[c::kMktSegment] = distinct(5);
  cust.columns[c::kNationKey] = distinct(25);
  cat.tables[kCustomerT] = cust;

  planner::TableStats part;
  part.rows = static_cast<double>(rows[kPartT]);
  part.columns[p::kPartKey] = distinct(static_cast<double>(rows[kPartT]));
  part.columns[p::kBrand] = distinct(25);
  part.columns[p::kType] = distinct(150);
  part.columns[p::kSize] = ranged(50, 1, 50);
  part.columns[p::kContainer] = distinct(40);
  cat.tables[kPartT] = part;
  return cat;
}

// ---------------------------------------------------------------------------
// Data preparation
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TpchContext>> PrepareTpch(const TpchTables& db,
                                                 const TpchRunOptions& opts) {
  auto ctx = std::make_unique<TpchContext>();
  ctx->platform = opts.platform;
  ctx->world_size = opts.world_size;
  ctx->store = std::make_unique<storage::BlobStore>();

  const ColumnTablePtr tables[kNumPlanTables] = {db.lineitem, db.orders,
                                                 db.customer, db.part};
  const int world = opts.world_size;

  if (opts.platform == Platform::kRdma) {
    ctx->frags.resize(kNumPlanTables);
    for (int t = 0; t < kNumPlanTables; ++t) {
      RowVectorPtr all = tables[t]->ToRowVector();
      ctx->table_rows[t] = all->size();
      for (int r = 0; r < world; ++r) {
        ctx->frags[t].push_back(RowVector::Make(all->schema()));
      }
      for (size_t i = 0; i < all->size(); ++i) {
        ctx->frags[t][i % world]->AppendRaw(all->row(i).data());
      }
    }
    return ctx;
  }

  // File-backed platforms: one shard object per (table, rank).
  ctx->paths.resize(kNumPlanTables);
  for (int t = 0; t < kNumPlanTables; ++t) {
    RowVectorPtr all = tables[t]->ToRowVector();
    ctx->table_rows[t] = all->size();
    for (int r = 0; r < world; ++r) {
      RowVectorPtr shard = RowVector::Make(all->schema());
      for (size_t i = r; i < all->size(); i += world) {
        shard->AppendRaw(all->row(i).data());
      }
      ColumnTablePtr shard_table = ColumnTable::FromRowVector(*shard);
      std::string key;
      if (opts.platform == Platform::kS3Select) {
        key = "tpch/" + std::string(TableName(t)) + "/shard-" +
              std::to_string(r) + ".csv";
        ctx->store->Put(key, storage::WriteCsv(*shard_table));
      } else {
        key = "tpch/" + std::string(TableName(t)) + "/shard-" +
              std::to_string(r) + ".mcf";
        ctx->store->Put(key, storage::WriteColumnFile(*shard_table));
      }
      ctx->paths[t].push_back(key);
    }
  }
  if (opts.platform == Platform::kS3Select) {
    ctx->s3select = std::make_unique<serverless::S3SelectEngine>(
        ctx->store.get(), opts.s3select);
  }
  return ctx;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

Result<RowVectorPtr> RunTpchQuerySpec(const TpchQuerySpec& spec,
                                      const TpchContext& ctx,
                                      const TpchRunOptions& opts,
                                      StatsRegistry* stats) {
  const bool serverless = opts.platform == Platform::kLambda ||
                          opts.platform == Platform::kS3Select;
  if (serverless && (opts.world_size & (opts.world_size - 1)) != 0) {
    return Status::InvalidArgument(
        "serverless platforms require a power-of-two worker count");
  }

  TpchPlanEnv env;
  env.platform = opts.platform;
  env.fused = opts.exec.enable_fusion;
  env.world = opts.world_size;
  env.exec = opts.exec;
  env.tag = "q-run" + std::to_string(g_run_counter.fetch_add(1));

  // Rank/worker plan factory: identical structure on every rank.
  auto make_plan = [&spec, env](int worker) -> SubOpPtr {
    TpchPlanEnv rank_env = env;  // fresh exchange counter per construction
    auto plan = std::make_unique<PipelinePlan>();
    std::string out = spec.build(plan.get(), &rank_env);
    if (rank_env.serverless()) {
      // Workers publish their partial result to S3 (MaterializeParquet →
      // driver-side ParquetScan path of Fig. 7).
      plan->SetOutput(std::make_unique<MaterializeColumnFile>(
          plan->MakeRef(out), spec.rank_schema,
          rank_env.tag + "/result-" + std::to_string(worker) + ".mcf"));
    } else {
      plan->SetOutput(plan->MakeRef(out));
    }
    return plan;
  };

  // Collect rank partials at the driver. The driver-side merge tail
  // (ReduceByKey / Sort) gets its own budget and spills into the same
  // store as the rank plans (docs/DESIGN-memory.md). Declared before the
  // merge operators below so it outlives their ScopedCharges.
  MemoryBudget driver_budget(opts.exec.memory_limit_bytes);
  RowVectorPtr partials = RowVector::Make(spec.rank_schema);
  ExecContext driver;
  driver.options = opts.exec;
  driver.stats = stats;
  driver.budget = &driver_budget;
  driver.spill_store = ctx.store.get();

  auto path_params = [&ctx](int rank) {
    Tuple t;
    for (int tb = 0; tb < kNumPlanTables; ++tb) {
      t.push_back(Item(ctx.paths[tb][rank]));
    }
    return t;
  };

  if (!serverless) {
    MpiExecutor::Config config;
    config.world_size = opts.world_size;
    config.fabric = opts.fabric;
    config.spill_store = ctx.store.get();
    if (opts.platform == Platform::kRdma) {
      config.plan_factory = make_plan;
      config.rank_params = [&ctx](int rank) {
        Tuple t;
        for (int tb = 0; tb < kNumPlanTables; ++tb) {
          t.push_back(Item(ctx.frags[tb][rank]));
        }
        return t;
      };
    } else {
      // Disc-backed tables: install an NFS-profile client per rank.
      storage::BlobStore* store = ctx.store.get();
      storage::BlobClientOptions profile = opts.storage;
      config.plan_factory = [make_plan, store, profile](int rank) -> SubOpPtr {
        return std::make_unique<WithBlobClient>(make_plan(rank), store,
                                                profile);
      };
      config.rank_params = path_params;
    }
    MpiExecutor executor(std::move(config));
    MODULARIS_ASSIGN_OR_RETURN(
        RowVectorPtr rows,
        plans::DrainCollections(&executor, &driver, spec.rank_schema));
    partials = rows;
  } else {
    LambdaExecutor::Config config;
    config.lambda = opts.lambda;
    config.lambda.num_workers = opts.world_size;
    config.lambda.s3 = opts.storage;
    config.store = ctx.store.get();
    config.s3select = ctx.s3select.get();
    config.plan_factory = make_plan;
    config.worker_params = path_params;

    // The driver reads the workers' result files back from S3 (PS → CS
    // tail of Fig. 7).
    storage::BlobClient driver_client(ctx.store.get(), opts.storage, -1);
    driver.blob = &driver_client;
    ColumnFileScan::Options copts;
    copts.retry = opts.exec.retry;
    auto scan = std::make_unique<ColumnScan>(
        std::make_unique<ColumnFileScan>(
            std::make_unique<LambdaExecutor>(std::move(config)), copts),
        spec.rank_schema);
    MODULARIS_RETURN_NOT_OK(scan->Open(&driver));
    Tuple t;
    while (scan->Next(&t)) {
      partials->AppendRaw(t[0].row().data());
    }
    MODULARIS_RETURN_NOT_OK(scan->status());
    MODULARIS_RETURN_NOT_OK(scan->Close());
  }

  // Driver-side merge: ReduceByKey → finalize Map → Sort/TopK (the RK /
  // TK / MR tail of Figs. 6 and 7).
  SubOpPtr cur = std::make_unique<CollectionSource>(
      std::vector<RowVectorPtr>{partials});
  Schema cur_schema = spec.rank_schema;
  if (spec.merge) {
    auto rk = std::make_unique<ReduceByKey>(std::move(cur), spec.merge_keys,
                                            spec.merge_aggs, cur_schema,
                                            "phase.driver_merge");
    cur_schema = rk->out_schema();
    cur = std::move(rk);
  } else {
    cur = std::make_unique<RowScan>(std::move(cur));
  }
  if (spec.merge_having != nullptr) {
    cur = std::make_unique<Filter>(std::move(cur), spec.merge_having);
  }
  if (!spec.finalize.empty()) {
    cur = std::make_unique<MapOp>(std::move(cur), spec.final_schema,
                                  spec.finalize);
    cur_schema = spec.final_schema;
  }
  if (!spec.sort.empty()) {
    // Distinct driver-phase timer keys so the final ORDER BY [LIMIT]
    // (Q3's top-10, Q18's top-100) never aliases a rank-side sort phase
    // in the stats breakdown. Both operators share one emit path and the
    // morsel-parallel run-sort + loser-tree merge; TopK additionally
    // bounds per-run selection to `limit` rows instead of fully sorting
    // the merged partials.
    if (spec.limit > 0) {
      cur = std::make_unique<TopK>(std::move(cur), spec.sort, spec.limit,
                                   cur_schema, "phase.driver_topk");
    } else {
      cur = std::make_unique<SortOp>(std::move(cur), spec.sort, cur_schema,
                                     "phase.driver_sort");
    }
  }
  auto mr = std::make_unique<MaterializeRowVector>(std::move(cur),
                                                   spec.final_schema);
  auto result = plans::DrainCollections(mr.get(), &driver, spec.final_schema);
  if (stats != nullptr && driver_budget.peak() > 0) {
    stats->AddCounter("mem.peak_bytes",
                      static_cast<int64_t>(driver_budget.peak()));
    if (driver_budget.denials() > 0) {
      stats->AddCounter("mem.denials",
                        static_cast<int64_t>(driver_budget.denials()));
    }
  }
  return result;
}

Result<RowVectorPtr> RunTpchQuery(int query, const TpchContext& ctx,
                                  const TpchRunOptions& opts,
                                  StatsRegistry* stats) {
  MODULARIS_ASSIGN_OR_RETURN(LogicalPlanPtr root, TpchLogicalPlan(query));
  planner::PlannerOptions popts;
  popts.catalog = TpchCatalog(ctx.table_rows);
  root = planner::Optimize(std::move(root), popts, stats);
  MODULARIS_ASSIGN_OR_RETURN(planner::DriverSpec driver,
                             planner::SplitAtDriver(root));

  // Trial-lower once on the driver so a malformed plan surfaces as a
  // Status here instead of aborting inside the executor's plan factory
  // (which has no error channel).
  {
    TpchPlanEnv env;
    env.platform = opts.platform;
    env.fused = opts.exec.enable_fusion;
    env.world = opts.world_size;
    env.exec = opts.exec;
    env.tag = "trial";
    planner::LoweringContext lctx = MakeLoweringContext(env, nullptr);
    PipelinePlan scratch;
    auto trial = planner::LowerRankPlan(*driver.rank_root, &scratch, &lctx);
    if (!trial.ok()) return trial.status();
  }

  TpchQuerySpec spec;
  LogicalPlanPtr rank_root = driver.rank_root;
  spec.build = [rank_root, stats](PipelinePlan* plan,
                                  TpchPlanEnv* env) -> std::string {
    planner::LoweringContext lctx = MakeLoweringContext(*env, stats);
    auto lowered = planner::LowerRankPlan(*rank_root, plan, &lctx);
    if (!lowered.ok()) {
      // Unreachable: the same plan trial-lowered cleanly above.
      std::fprintf(stderr, "tpch: lowering failed: %s\n",
                   lowered.status().ToString().c_str());
      std::abort();
    }
    return lowered.value().pipeline;
  };
  spec.rank_schema = driver.rank_schema;
  spec.merge = driver.merge;
  spec.merge_keys = driver.merge_keys;
  spec.merge_aggs = driver.merge_aggs;
  spec.merge_having = driver.merge_having;
  spec.finalize = driver.finalize;
  spec.final_schema = driver.final_schema;
  spec.sort = driver.sort;
  spec.limit = driver.limit;
  return RunTpchQuerySpec(spec, ctx, opts, stats);
}

}  // namespace modularis::tpch
