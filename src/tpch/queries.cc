#include "tpch/queries.h"

#include <atomic>
#include <cmath>

#include "mpi/tcp_exchange.h"
#include "plans/common.h"
#include "storage/csv.h"
#include "suboperators/agg_ops.h"
#include "suboperators/join_ops.h"
#include "suboperators/partition_ops.h"

namespace modularis::tpch {

using plans::MaybeScan;
using plans::ParamItem;

const char* PlatformName(Platform platform) {
  switch (platform) {
    case Platform::kRdma: return "rdma";
    case Platform::kRdmaDisc: return "rdma+disc";
    case Platform::kLambda: return "lambda";
    case Platform::kS3Select: return "s3select";
  }
  return "?";
}

TpchRunOptions TpchRunOptions::Rdma(int ranks, bool with_disc) {
  TpchRunOptions o;
  o.platform = with_disc ? Platform::kRdmaDisc : Platform::kRdma;
  o.world_size = ranks;
  o.storage = storage::BlobClientOptions::Nfs();
  return o;
}

TpchRunOptions TpchRunOptions::Lambda(int workers) {
  TpchRunOptions o;
  o.platform = Platform::kLambda;
  o.world_size = workers;
  o.lambda.num_workers = workers;
  o.storage = storage::BlobClientOptions::S3();
  return o;
}

TpchRunOptions TpchRunOptions::S3Select(int workers) {
  TpchRunOptions o = Lambda(workers);
  o.platform = Platform::kS3Select;
  return o;
}

namespace {

enum TableId { kLineitem = 0, kOrdersT = 1, kCustomerT = 2, kPartT = 3 };

Schema FullSchema(int table) {
  switch (table) {
    case kLineitem: return LineitemSchema();
    case kOrdersT: return OrdersSchema();
    case kCustomerT: return CustomerSchema();
    case kPartT: return PartSchema();
  }
  return Schema();
}

const char* TableName(int table) {
  switch (table) {
    case kLineitem: return "lineitem";
    case kOrdersT: return "orders";
    case kCustomerT: return "customer";
    case kPartT: return "part";
  }
  return "?";
}

/// Per-rank plan construction environment. Copied per rank; the exchange
/// counter yields identical (shared) object prefixes on every rank.
struct Env {
  Platform platform = Platform::kRdma;
  bool fused = true;
  int world = 1;
  ExecOptions exec;
  std::string tag;  // unique per query run; prefixes exchange objects
  int next_exchange = 0;

  bool serverless() const {
    return platform == Platform::kLambda || platform == Platform::kS3Select;
  }
};

int Log2Exact(int v) {
  int bits = 0;
  while ((1 << bits) < v) ++bits;
  return bits;
}

/// One base-table leaf: projection (full-schema indices), residual filter
/// (over the pruned schema) and row-group pruning ranges (full-schema
/// column indices).
struct TableInput {
  int table = kLineitem;
  std::vector<int> cols;
  ExprPtr filter;
  std::vector<ColumnFileScan::Range> ranges;
};

Schema PrunedSchema(const TableInput& in) {
  return FullSchema(in.table).Select(in.cols);
}

/// Adds pipeline `name` yielding this rank's filtered + pruned shard of
/// the table — the only plan fragment that differs per platform
/// (scan leaves, Figs. 6/7).
void AddInput(PipelinePlan* plan, const std::string& name,
              const TableInput& in, const Env& env) {
  Schema pruned = PrunedSchema(in);
  SubOpPtr rows;
  switch (env.platform) {
    case Platform::kRdma: {
      // In-memory base table fragment: prune + filter record-wise.
      std::vector<MapOutput> prune;
      prune.reserve(in.cols.size());
      for (int c : in.cols) prune.push_back(MapOutput::Pass(c));
      rows = std::make_unique<MapOp>(
          std::make_unique<RowScan>(ParamItem(in.table)), pruned,
          std::move(prune));
      break;
    }
    case Platform::kRdmaDisc:
    case Platform::kLambda: {
      // ColumnFile on NFS/S3: projection + range pushdown in the scan.
      ColumnFileScan::Options copts;
      copts.projection = in.cols;
      copts.ranges = in.ranges;
      rows = std::make_unique<ColumnScan>(
          std::make_unique<ColumnFileScan>(ParamItem(in.table), copts),
          pruned);
      break;
    }
    case Platform::kS3Select: {
      // Smart storage: both projection and selection are pushed into the
      // storage service; nothing remains to filter here (§4.5).
      S3SelectRequest::Options sopts;
      sopts.object_schema = FullSchema(in.table);
      sopts.projection = in.cols;
      sopts.predicate = in.filter;
      plan->Add(name, std::make_unique<TableToCollection>(
                          std::make_unique<S3SelectRequest>(
                              ParamItem(in.table), std::move(sopts))));
      return;
    }
  }
  if (in.filter != nullptr) {
    rows = std::make_unique<Filter>(std::move(rows), in.filter);
  }
  plan->Add(name, std::make_unique<MaterializeRowVector>(std::move(rows),
                                                         pruned));
}

/// Adds the platform's exchange for pipeline `src` keyed on `key_col`
/// and returns the name of the pipeline yielding the exchanged data:
/// ⟨pid, collection⟩ tuples on RDMA, ⟨path, rg, rg⟩ triples on serverless.
std::string AddExchange(PipelinePlan* plan, Env* env, const std::string& src,
                        int key_col) {
  std::string base = src + "_x" + std::to_string(env->next_exchange++);
  if (!env->serverless() && env->exec.tcp_exchange) {
    // The TCP backend of §4.4: swapping this single operator (plus the
    // executor) is all a new network platform requires.
    TcpExchange::Options topts;
    topts.key_col = key_col;
    plan->Add(base + "_tcp",
              std::make_unique<TcpExchange>(
                  MaybeScan(plan->MakeRef(src), env->fused), topts));
    return base + "_tcp";
  }
  if (!env->serverless()) {
    RadixSpec spec;
    spec.bits = env->exec.network_radix_bits;
    spec.shift = 0;
    spec.hash = RadixHash::kMix;
    plan->Add(base + "_lh",
              std::make_unique<LocalHistogram>(
                  MaybeScan(plan->MakeRef(src), env->fused), spec, key_col));
    plan->Add(base + "_mh",
              std::make_unique<MpiHistogram>(plan->MakeRef(base + "_lh")));
    MpiExchange::Options xopts;
    xopts.spec = spec;
    xopts.key_col = key_col;
    xopts.compress = false;
    xopts.buffer_bytes = env->exec.exchange_buffer_bytes;
    plan->Add(base + "_mx",
              std::make_unique<MpiExchange>(
                  MaybeScan(plan->MakeRef(src), env->fused),
                  plan->MakeRef(base + "_lh"),
                  plan->MakeRef(base + "_mh"), xopts));
    return base + "_mx";
  }
  // Serverless: Partition → GroupBy → S3Exchange (Fig. 7, §4.4).
  RadixSpec spec;
  spec.bits = Log2Exact(env->world);
  spec.shift = 0;
  spec.hash = RadixHash::kMix;
  plan->Add(base + "_part",
            std::make_unique<GroupByPid>(std::make_unique<PartitionOp>(
                MaybeScan(plan->MakeRef(src), env->fused), spec, key_col)));
  S3Exchange::Options xopts;
  xopts.prefix = env->tag + "/" + base;
  xopts.write_combining = env->exec.s3_write_combining;
  xopts.retry = env->exec.retry;
  plan->Add(base + "_s3x", std::make_unique<S3Exchange>(
                               plan->MakeRef(base + "_part"), xopts));
  return base + "_s3x";
}

/// Source of exchanged records for one side of a downstream operator.
SubOpPtr ExchangedData(PipelinePlan* plan, const Env& env,
                       const std::string& xpipe, int param_item) {
  if (!env.serverless()) {
    // Inside a NestedMap over zipped partition pairs: the data collection
    // sits at `param_item` of the parameter tuple.
    return MaybeScan(ParamItem(param_item), env.fused);
  }
  // Serverless: read this worker's row groups back from S3.
  ColumnFileScan::Options copts;
  copts.retry = env.exec.retry;
  return std::make_unique<TableToCollection>(std::make_unique<ColumnFileScan>(
      plan->MakeRef(xpipe), std::move(copts)));
}

/// Adds a distributed hash join between two materialized pipelines and
/// materializes the (optionally filtered/mapped) join output as pipeline
/// `out_name` with schema `out_schema`.
void AddJoin(PipelinePlan* plan, Env* env, const std::string& out_name,
             const std::string& build_pipe, const Schema& build_schema,
             int build_key, const std::string& probe_pipe,
             const Schema& probe_schema, int probe_key, JoinType type,
             ExprPtr post_filter, std::vector<MapOutput> post,
             const Schema& out_schema, bool allow_broadcast = true) {
  auto finish = [&](SubOpPtr cur) -> SubOpPtr {
    if (post_filter != nullptr) {
      cur = std::make_unique<Filter>(std::move(cur), post_filter);
    }
    if (!post.empty()) {
      cur = std::make_unique<MapOp>(std::move(cur), out_schema,
                                    std::move(post));
    }
    return std::make_unique<MaterializeRowVector>(std::move(cur),
                                                  out_schema);
  };

  if (!env->serverless() && env->exec.broadcast_small_build &&
      allow_broadcast) {
    // Broadcast join: replicate the (small) build side everywhere; the
    // probe side never crosses the network.
    std::string bx = build_pipe + "_bcast" +
                     std::to_string(env->next_exchange++);
    plan->Add(bx, std::make_unique<MpiBroadcast>(
                      MaybeScan(plan->MakeRef(build_pipe), env->fused),
                      build_schema));
    auto bp = std::make_unique<BuildProbe>(
        MaybeScan(plan->MakeRef(bx), env->fused),
        MaybeScan(plan->MakeRef(probe_pipe), env->fused), build_schema,
        probe_schema, build_key, probe_key, type);
    plan->Add(out_name, finish(std::move(bp)));
    return;
  }

  std::string xb = AddExchange(plan, env, build_pipe, build_key);
  std::string xp = AddExchange(plan, env, probe_pipe, probe_key);

  if (!env->serverless()) {
    // NestedMap over zipped ⟨pid, data⟩ pairs (Fig. 6).
    auto nested = finish(std::make_unique<BuildProbe>(
        MaybeScan(ParamItem(1), env->fused), MaybeScan(ParamItem(3),
                                                       env->fused),
        build_schema, probe_schema, build_key, probe_key, type));
    auto zip = std::make_unique<Zip>(plan->MakeRef(xb), plan->MakeRef(xp));
    auto nm = std::make_unique<NestedMap>(std::move(zip), std::move(nested));
    plan->Add(out_name, std::make_unique<MaterializeRowVector>(
                            MaybeScan(std::move(nm), env->fused), out_schema));
    return;
  }
  // Serverless: each worker holds exactly one partition after the
  // exchange — no NestedMap (Fig. 7).
  auto bp = std::make_unique<BuildProbe>(
      ExchangedData(plan, *env, xb, 1), ExchangedData(plan, *env, xp, 3),
      build_schema, probe_schema, build_key, probe_key, type);
  plan->Add(out_name, finish(std::move(bp)));
}

/// Adds a shuffled aggregation: exchange `in_pipe` on `key_col`, then
/// ReduceByKey per partition with an optional HAVING filter.
void AddShuffledAgg(PipelinePlan* plan, Env* env, const std::string& out_name,
                    const std::string& in_pipe, const Schema& in_schema,
                    int key_col, std::vector<int> keys,
                    std::vector<AggSpec> aggs, ExprPtr having,
                    const Schema& out_schema) {
  std::string x = AddExchange(plan, env, in_pipe, key_col);

  auto finish = [&](SubOpPtr records) -> SubOpPtr {
    SubOpPtr cur = std::make_unique<ReduceByKey>(
        std::move(records), std::move(keys), std::move(aggs), in_schema);
    if (having != nullptr) {
      cur = std::make_unique<Filter>(std::move(cur), having);
    }
    return std::make_unique<MaterializeRowVector>(std::move(cur),
                                                  out_schema);
  };

  if (!env->serverless()) {
    auto nested = finish(MaybeScan(ParamItem(1), env->fused));
    auto nm = std::make_unique<NestedMap>(plan->MakeRef(x),
                                          std::move(nested));
    plan->Add(out_name, std::make_unique<MaterializeRowVector>(
                            MaybeScan(std::move(nm), env->fused), out_schema));
    return;
  }
  plan->Add(out_name, finish(ExchangedData(plan, *env, x, 1)));
}

/// Adds a rank-local aggregation over a materialized pipeline.
void AddLocalAgg(PipelinePlan* plan, const Env& env,
                 const std::string& out_name, const std::string& in_pipe,
                 const Schema& in_schema, std::vector<int> keys,
                 std::vector<AggSpec> aggs, const Schema& out_schema) {
  SubOpPtr cur = std::make_unique<ReduceByKey>(
      MaybeScan(plan->MakeRef(in_pipe), env.fused), std::move(keys),
      std::move(aggs), in_schema);
  plan->Add(out_name, std::make_unique<MaterializeRowVector>(std::move(cur),
                                                             out_schema));
}

// ---------------------------------------------------------------------------
// Query definitions
// ---------------------------------------------------------------------------

/// A query = per-rank plan builder + driver-side merge specification.
struct QueryDef {
  /// Builds the rank plan; `out_pipe` must be the name of the pipeline
  /// holding the rank's partial result.
  std::function<std::string(PipelinePlan*, Env*)> build;
  Schema rank_schema;

  bool merge = false;                 // re-aggregate at the driver
  std::vector<int> merge_keys;
  std::vector<AggSpec> merge_aggs;
  std::vector<MapOutput> finalize;    // over merged schema (empty = id)
  Schema final_schema;
  std::vector<SortKey> sort;
  size_t limit = 0;
};

AggSpec SumF64(ExprPtr in, std::string name) {
  return AggSpec{AggKind::kSum, std::move(in), std::move(name),
                 AtomType::kFloat64};
}
AggSpec SumI64(ExprPtr in, std::string name) {
  return AggSpec{AggKind::kSum, std::move(in), std::move(name),
                 AtomType::kInt64};
}
AggSpec CountStar(std::string name) {
  return AggSpec{AggKind::kCount, nullptr, std::move(name), AtomType::kInt64};
}

int32_t Date(int y, int m, int d) { return DateFromYMD(y, m, d); }

QueryDef MakeQ1() {
  QueryDef q;
  const int32_t cutoff = Date(1998, 12, 1) - 90;
  q.build = [cutoff](PipelinePlan* plan, Env* env) -> std::string {
    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kReturnFlag, l::kLineStatus, l::kQuantity,
               l::kExtendedPrice, l::kDiscount, l::kTax, l::kShipDate};
    li.filter = ex::Le(ex::Col(6), ex::Lit(int64_t{cutoff}));
    li.ranges = {{l::kShipDate, INT32_MIN, cutoff}};
    AddInput(plan, "li", li, *env);
    // disc_price = price * (1 - disc); charge = disc_price * (1 + tax).
    ExprPtr disc_price =
        ex::Mul(ex::Col(3), ex::Sub(ex::Lit(1.0), ex::Col(4)));
    ExprPtr charge = ex::Mul(ex::Mul(ex::Col(3), ex::Sub(ex::Lit(1.0),
                                                         ex::Col(4))),
                             ex::Add(ex::Lit(1.0), ex::Col(5)));
    AddLocalAgg(plan, *env, "agg", "li", PrunedSchema(li), {0, 1},
                {SumF64(ex::Col(2), "sum_qty"),
                 SumF64(ex::Col(3), "sum_base_price"),
                 SumF64(disc_price, "sum_disc_price"),
                 SumF64(charge, "sum_charge"), CountStar("count_order")},
                Q1OutSchema());
    return "agg";
  };
  q.rank_schema = Q1OutSchema();
  q.merge = true;
  q.merge_keys = {0, 1};
  q.merge_aggs = {SumF64(ex::Col(2), "sum_qty"),
                  SumF64(ex::Col(3), "sum_base_price"),
                  SumF64(ex::Col(4), "sum_disc_price"),
                  SumF64(ex::Col(5), "sum_charge"),
                  SumI64(ex::Col(6), "count_order")};
  q.final_schema = Q1OutSchema();
  q.sort = {{0, false}, {1, false}};
  return q;
}

QueryDef MakeQ3() {
  QueryDef q;
  const int32_t date = Date(1995, 3, 15);
  q.build = [date](PipelinePlan* plan, Env* env) -> std::string {
    TableInput cust;
    cust.table = kCustomerT;
    cust.cols = {c::kCustKey, c::kMktSegment};
    cust.filter = ex::Eq(ex::Col(1), ex::Lit(std::string("BUILDING")));
    AddInput(plan, "cust", cust, *env);

    TableInput ord;
    ord.table = kOrdersT;
    ord.cols = {o::kOrderKey, o::kCustKey, o::kOrderDate, o::kShipPriority};
    ord.filter = ex::Lt(ex::Col(2), ex::Lit(int64_t{date}));
    ord.ranges = {{o::kOrderDate, INT32_MIN, date - 1}};
    AddInput(plan, "ord", ord, *env);

    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kOrderKey, l::kExtendedPrice, l::kDiscount, l::kShipDate};
    li.filter = ex::Gt(ex::Col(3), ex::Lit(int64_t{date}));
    li.ranges = {{l::kShipDate, date + 1, INT32_MAX}};
    AddInput(plan, "li", li, *env);

    // customer ⋈ orders on custkey.
    Schema j1({Field::I64("o_orderkey"), Field::Date("o_orderdate"),
               Field::I32("o_shippriority")});
    AddJoin(plan, env, "j1", "cust", PrunedSchema(cust), 0, "ord",
            PrunedSchema(ord), 1, JoinType::kInner, nullptr,
            {MapOutput::Pass(2), MapOutput::Pass(4), MapOutput::Pass(5)},
            j1);

    // (customer ⋈ orders) ⋈ lineitem on orderkey, computing revenue.
    Schema j2({Field::I64("l_orderkey"), Field::Date("o_orderdate"),
               Field::I32("o_shippriority"), Field::F64("revenue")});
    AddJoin(plan, env, "j2", "j1", j1, 0, "li", PrunedSchema(li), 0,
            JoinType::kInner, nullptr,
            {MapOutput::Pass(0), MapOutput::Pass(1), MapOutput::Pass(2),
             MapOutput::Compute(ex::Mul(
                 ex::Col(4), ex::Sub(ex::Lit(1.0), ex::Col(5))))},
            j2);

    AddLocalAgg(plan, *env, "agg", "j2", j2, {0, 1, 2},
                {SumF64(ex::Col(3), "revenue")},
                Schema({Field::I64("l_orderkey"), Field::Date("o_orderdate"),
                        Field::I32("o_shippriority"),
                        Field::F64("revenue")}));
    return "agg";
  };
  q.rank_schema = Schema({Field::I64("l_orderkey"),
                          Field::Date("o_orderdate"),
                          Field::I32("o_shippriority"),
                          Field::F64("revenue")});
  q.merge = true;
  q.merge_keys = {0, 1, 2};
  q.merge_aggs = {SumF64(ex::Col(3), "revenue")};
  q.finalize = {MapOutput::Pass(0), MapOutput::Pass(3), MapOutput::Pass(1),
                MapOutput::Pass(2)};
  q.final_schema = Q3OutSchema();
  q.sort = {{1, true}, {2, false}, {0, false}};
  q.limit = 10;
  return q;
}

QueryDef MakeQ4() {
  QueryDef q;
  const int32_t lo = Date(1993, 7, 1);
  const int32_t hi = AddMonths(lo, 3);
  q.build = [lo, hi](PipelinePlan* plan, Env* env) -> std::string {
    TableInput ord;
    ord.table = kOrdersT;
    ord.cols = {o::kOrderKey, o::kOrderDate, o::kOrderPriority};
    ord.filter = ex::And(ex::Ge(ex::Col(1), ex::Lit(int64_t{lo})),
                         ex::Lt(ex::Col(1), ex::Lit(int64_t{hi})));
    ord.ranges = {{o::kOrderDate, lo, hi - 1}};
    AddInput(plan, "ord", ord, *env);

    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kOrderKey, l::kCommitDate, l::kReceiptDate};
    li.filter = ex::Lt(ex::Col(1), ex::Col(2));
    AddInput(plan, "li", li, *env);

    // EXISTS: orders ⋉ late lineitems on orderkey (semi join — one of the
    // §3.4 BuildProbe variants).
    Schema semi_out = PrunedSchema(ord);
    AddJoin(plan, env, "semi", "li", PrunedSchema(li), 0, "ord",
            PrunedSchema(ord), 0, JoinType::kSemi, nullptr, {}, semi_out,
            /*allow_broadcast=*/false);  // build side is lineitem-sized

    AddLocalAgg(plan, *env, "agg", "semi", semi_out, {2},
                {CountStar("order_count")}, Q4OutSchema());
    return "agg";
  };
  q.rank_schema = Q4OutSchema();
  q.merge = true;
  q.merge_keys = {0};
  q.merge_aggs = {SumI64(ex::Col(1), "order_count")};
  q.final_schema = Q4OutSchema();
  q.sort = {{0, false}};
  return q;
}

QueryDef MakeQ6() {
  QueryDef q;
  const int32_t lo = Date(1994, 1, 1);
  const int32_t hi = Date(1995, 1, 1);
  q.build = [lo, hi](PipelinePlan* plan, Env* env) -> std::string {
    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kShipDate, l::kDiscount, l::kQuantity, l::kExtendedPrice};
    li.filter = ex::And(
        {ex::Ge(ex::Col(0), ex::Lit(int64_t{lo})),
         ex::Lt(ex::Col(0), ex::Lit(int64_t{hi})),
         ex::Ge(ex::Col(1), ex::Lit(0.05 - 1e-9)),
         ex::Le(ex::Col(1), ex::Lit(0.07 + 1e-9)),
         ex::Lt(ex::Col(2), ex::Lit(24.0))});
    li.ranges = {{l::kShipDate, lo, hi - 1}};
    AddInput(plan, "li", li, *env);
    AddLocalAgg(plan, *env, "agg", "li", PrunedSchema(li), {},
                {SumF64(ex::Mul(ex::Col(3), ex::Col(1)), "revenue")},
                Q6OutSchema());
    return "agg";
  };
  q.rank_schema = Q6OutSchema();
  q.merge = true;
  q.merge_aggs = {SumF64(ex::Col(0), "revenue")};
  q.final_schema = Q6OutSchema();
  return q;
}

QueryDef MakeQ12() {
  QueryDef q;
  const int32_t lo = Date(1994, 1, 1);
  const int32_t hi = Date(1995, 1, 1);
  q.build = [lo, hi](PipelinePlan* plan, Env* env) -> std::string {
    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kOrderKey, l::kShipMode, l::kShipDate, l::kCommitDate,
               l::kReceiptDate};
    li.filter = ex::And(
        {ex::InStr(ex::Col(1), {"MAIL", "SHIP"}),
         ex::Lt(ex::Col(3), ex::Col(4)), ex::Lt(ex::Col(2), ex::Col(3)),
         ex::Ge(ex::Col(4), ex::Lit(int64_t{lo})),
         ex::Lt(ex::Col(4), ex::Lit(int64_t{hi}))});
    li.ranges = {{l::kReceiptDate, lo, hi - 1}};
    AddInput(plan, "li", li, *env);

    TableInput ord;
    ord.table = kOrdersT;
    ord.cols = {o::kOrderKey, o::kOrderPriority};
    AddInput(plan, "ord", ord, *env);

    // lineitem' ⋈ orders on orderkey; classify priority (Fig. 6's plan).
    // Concat schema: 0..4 lineitem', 5 o_orderkey, 6 o_orderpriority.
    Schema j({Field::Str("l_shipmode", 10), Field::I64("high"),
              Field::I64("low")});
    ExprPtr is_high =
        ex::InStr(ex::Col(6), {"1-URGENT", "2-HIGH"});
    AddJoin(plan, env, "j", "li", PrunedSchema(li), 0, "ord",
            PrunedSchema(ord), 0, JoinType::kInner, nullptr,
            {MapOutput::Pass(1),
             MapOutput::Compute(ex::If(is_high, ex::Lit(int64_t{1}),
                                       ex::Lit(int64_t{0}))),
             MapOutput::Compute(ex::If(is_high, ex::Lit(int64_t{0}),
                                       ex::Lit(int64_t{1})))},
            j);

    AddLocalAgg(plan, *env, "agg", "j", j, {0},
                {SumI64(ex::Col(1), "high_line_count"),
                 SumI64(ex::Col(2), "low_line_count")},
                Q12OutSchema());
    return "agg";
  };
  q.rank_schema = Q12OutSchema();
  q.merge = true;
  q.merge_keys = {0};
  q.merge_aggs = {SumI64(ex::Col(1), "high_line_count"),
                  SumI64(ex::Col(2), "low_line_count")};
  q.final_schema = Q12OutSchema();
  q.sort = {{0, false}};
  return q;
}

QueryDef MakeQ14() {
  QueryDef q;
  const int32_t lo = Date(1995, 9, 1);
  const int32_t hi = AddMonths(lo, 1);
  q.build = [lo, hi](PipelinePlan* plan, Env* env) -> std::string {
    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kPartKey, l::kExtendedPrice, l::kDiscount, l::kShipDate};
    li.filter = ex::And(ex::Ge(ex::Col(3), ex::Lit(int64_t{lo})),
                        ex::Lt(ex::Col(3), ex::Lit(int64_t{hi})));
    li.ranges = {{l::kShipDate, lo, hi - 1}};
    AddInput(plan, "li", li, *env);

    TableInput part;
    part.table = kPartT;
    part.cols = {p::kPartKey, p::kType};
    AddInput(plan, "part", part, *env);

    // lineitem' ⋈ part on partkey; conditional promo revenue (the UDF-ish
    // Map the paper singles out in §5.1.1).
    ExprPtr rev = ex::Mul(ex::Col(1), ex::Sub(ex::Lit(1.0), ex::Col(2)));
    Schema j({Field::F64("promo_rev"), Field::F64("rev")});
    AddJoin(plan, env, "j", "li", PrunedSchema(li), 0, "part",
            PrunedSchema(part), 0, JoinType::kInner, nullptr,
            {MapOutput::Compute(ex::If(ex::Like(ex::Col(5), "PROMO%"), rev,
                                       ex::Lit(0.0))),
             MapOutput::Compute(rev)},
            j);

    AddLocalAgg(plan, *env, "agg", "j", j, {},
                {SumF64(ex::Col(0), "promo"), SumF64(ex::Col(1), "total")},
                Schema({Field::F64("promo"), Field::F64("total")}));
    return "agg";
  };
  q.rank_schema = Schema({Field::F64("promo"), Field::F64("total")});
  q.merge = true;
  q.merge_aggs = {SumF64(ex::Col(0), "promo"), SumF64(ex::Col(1), "total")};
  q.finalize = {MapOutput::Compute(
      ex::Mul(ex::Lit(100.0), ex::Div(ex::Col(0), ex::Col(1))))};
  q.final_schema = Q14OutSchema();
  return q;
}

QueryDef MakeQ18() {
  QueryDef q;
  q.build = [](PipelinePlan* plan, Env* env) -> std::string {
    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kOrderKey, l::kQuantity};
    AddInput(plan, "li", li, *env);

    // High-cardinality aggregation with HAVING sum(qty) > 300.
    Schema big({Field::I64("o_orderkey"), Field::F64("sum_qty")});
    AddShuffledAgg(plan, env, "big", "li", PrunedSchema(li), 0, {0},
                   {SumF64(ex::Col(1), "sum_qty")},
                   ex::Gt(ex::Col(1), ex::Lit(300.0)), big);

    TableInput ord;
    ord.table = kOrdersT;
    ord.cols = {o::kOrderKey, o::kCustKey, o::kOrderDate, o::kTotalPrice};
    AddInput(plan, "ord", ord, *env);

    // big ⋈ orders on orderkey.
    Schema j1({Field::I64("o_custkey"), Field::I64("o_orderkey"),
               Field::Date("o_orderdate"), Field::F64("o_totalprice"),
               Field::F64("sum_qty")});
    AddJoin(plan, env, "j1", "big", big, 0, "ord", PrunedSchema(ord), 0,
            JoinType::kInner, nullptr,
            {MapOutput::Pass(3), MapOutput::Pass(0), MapOutput::Pass(4),
             MapOutput::Pass(5), MapOutput::Pass(1)},
            j1);

    TableInput cust;
    cust.table = kCustomerT;
    cust.cols = {c::kCustKey, c::kName};
    AddInput(plan, "cust", cust, *env);

    // customer ⋈ j1 on custkey → final Q18 rows.
    AddJoin(plan, env, "j2", "cust", PrunedSchema(cust), 0, "j1", j1, 0,
            JoinType::kInner, nullptr,
            {MapOutput::Pass(1), MapOutput::Pass(0), MapOutput::Pass(3),
             MapOutput::Pass(4), MapOutput::Pass(5), MapOutput::Pass(6)},
            Q18OutSchema());
    return "j2";
  };
  q.rank_schema = Q18OutSchema();
  q.final_schema = Q18OutSchema();
  q.sort = {{4, true}, {3, false}, {2, false}};
  q.limit = 100;
  return q;
}

QueryDef MakeQ19() {
  QueryDef q;
  q.build = [](PipelinePlan* plan, Env* env) -> std::string {
    TableInput li;
    li.table = kLineitem;
    li.cols = {l::kPartKey, l::kQuantity, l::kExtendedPrice, l::kDiscount,
               l::kShipMode, l::kShipInstruct};
    li.filter = ex::And(
        {ex::InStr(ex::Col(4), {"AIR", "REG AIR"}),
         ex::Eq(ex::Col(5), ex::Lit(std::string("DELIVER IN PERSON"))),
         ex::Ge(ex::Col(1), ex::Lit(1.0)), ex::Le(ex::Col(1),
                                                  ex::Lit(30.0))});
    AddInput(plan, "li", li, *env);

    TableInput part;
    part.table = kPartT;
    part.cols = {p::kPartKey, p::kBrand, p::kSize, p::kContainer};
    part.filter = ex::And(
        {ex::InStr(ex::Col(1), {"Brand#12", "Brand#23", "Brand#34"}),
         ex::Ge(ex::Col(2), ex::Lit(int64_t{1})),
         ex::Le(ex::Col(2), ex::Lit(int64_t{15}))});
    AddInput(plan, "part", part, *env);

    // Disjunctive predicate over the joined record (concat schema:
    // 0 pk, 1 qty, 2 price, 3 disc, 4 mode, 5 instr, 6 p_pk, 7 brand,
    // 8 size, 9 container).
    auto branch = [](const char* brand,
                     std::vector<std::string> containers, double qlo,
                     double qhi, int64_t smax) {
      return ex::And({ex::Eq(ex::Col(7), ex::Lit(std::string(brand))),
                      ex::InStr(ex::Col(9), std::move(containers)),
                      ex::Ge(ex::Col(1), ex::Lit(qlo)),
                      ex::Le(ex::Col(1), ex::Lit(qhi)),
                      ex::Le(ex::Col(8), ex::Lit(smax))});
    };
    ExprPtr predicate = ex::Or(
        {branch("Brand#12", {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1,
                11, 5),
         branch("Brand#23", {"MED BAG", "MED BOX", "MED PKG", "MED PACK"},
                10, 20, 10),
         branch("Brand#34", {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20,
                30, 15)});

    Schema j({Field::F64("rev")});
    AddJoin(plan, env, "j", "li", PrunedSchema(li), 0, "part",
            PrunedSchema(part), 0, JoinType::kInner, predicate,
            {MapOutput::Compute(
                ex::Mul(ex::Col(2), ex::Sub(ex::Lit(1.0), ex::Col(3))))},
            j);

    AddLocalAgg(plan, *env, "agg", "j", j, {},
                {SumF64(ex::Col(0), "revenue")}, Q19OutSchema());
    return "agg";
  };
  q.rank_schema = Q19OutSchema();
  q.merge = true;
  q.merge_aggs = {SumF64(ex::Col(0), "revenue")};
  q.final_schema = Q19OutSchema();
  return q;
}

Result<QueryDef> GetQueryDef(int query) {
  switch (query) {
    case 1: return MakeQ1();
    case 3: return MakeQ3();
    case 4: return MakeQ4();
    case 6: return MakeQ6();
    case 12: return MakeQ12();
    case 14: return MakeQ14();
    case 18: return MakeQ18();
    case 19: return MakeQ19();
    default:
      return Status::InvalidArgument("unsupported TPC-H query " +
                                     std::to_string(query));
  }
}

std::atomic<uint64_t> g_run_counter{0};

/// Adapter installing a per-rank storage client into the ExecContext
/// before opening the wrapped plan (the RDMA-with-disc configuration
/// reads base tables through an NFS-profile client).
class WithBlobClient : public SubOperator {
 public:
  WithBlobClient(SubOpPtr inner, storage::BlobStore* store,
                 storage::BlobClientOptions profile)
      : SubOperator("WithBlobClient"),
        inner_(std::move(inner)),
        store_(store),
        profile_(std::move(profile)) {}

  Status Open(ExecContext* ctx) override {
    ctx_ = ctx;
    status_ = Status::OK();
    client_ = std::make_unique<storage::BlobClient>(store_, profile_,
                                                    ctx->rank);
    ctx->blob = client_.get();
    return inner_->Open(ctx);
  }
  bool Next(Tuple* out) override {
    if (inner_->Next(out)) return true;
    if (!inner_->status().ok()) return Fail(inner_->status());
    return false;
  }
  Status Close() override { return inner_->Close(); }

 private:
  SubOpPtr inner_;
  storage::BlobStore* store_;
  storage::BlobClientOptions profile_;
  std::unique_ptr<storage::BlobClient> client_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Data preparation
// ---------------------------------------------------------------------------

Result<std::unique_ptr<TpchContext>> PrepareTpch(const TpchTables& db,
                                                 const TpchRunOptions& opts) {
  auto ctx = std::make_unique<TpchContext>();
  ctx->platform = opts.platform;
  ctx->world_size = opts.world_size;
  ctx->store = std::make_unique<storage::BlobStore>();

  const ColumnTablePtr tables[kNumPlanTables] = {db.lineitem, db.orders,
                                                 db.customer, db.part};
  const int world = opts.world_size;

  if (opts.platform == Platform::kRdma) {
    ctx->frags.resize(kNumPlanTables);
    for (int t = 0; t < kNumPlanTables; ++t) {
      RowVectorPtr all = tables[t]->ToRowVector();
      for (int r = 0; r < world; ++r) {
        ctx->frags[t].push_back(RowVector::Make(all->schema()));
      }
      for (size_t i = 0; i < all->size(); ++i) {
        ctx->frags[t][i % world]->AppendRaw(all->row(i).data());
      }
    }
    return ctx;
  }

  // File-backed platforms: one shard object per (table, rank).
  ctx->paths.resize(kNumPlanTables);
  for (int t = 0; t < kNumPlanTables; ++t) {
    RowVectorPtr all = tables[t]->ToRowVector();
    for (int r = 0; r < world; ++r) {
      RowVectorPtr shard = RowVector::Make(all->schema());
      for (size_t i = r; i < all->size(); i += world) {
        shard->AppendRaw(all->row(i).data());
      }
      ColumnTablePtr shard_table = ColumnTable::FromRowVector(*shard);
      std::string key;
      if (opts.platform == Platform::kS3Select) {
        key = "tpch/" + std::string(TableName(t)) + "/shard-" +
              std::to_string(r) + ".csv";
        ctx->store->Put(key, storage::WriteCsv(*shard_table));
      } else {
        key = "tpch/" + std::string(TableName(t)) + "/shard-" +
              std::to_string(r) + ".mcf";
        ctx->store->Put(key, storage::WriteColumnFile(*shard_table));
      }
      ctx->paths[t].push_back(key);
    }
  }
  if (opts.platform == Platform::kS3Select) {
    ctx->s3select = std::make_unique<serverless::S3SelectEngine>(
        ctx->store.get(), opts.s3select);
  }
  return ctx;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

Result<RowVectorPtr> RunTpchQuery(int query, const TpchContext& ctx,
                                  const TpchRunOptions& opts,
                                  StatsRegistry* stats) {
  MODULARIS_ASSIGN_OR_RETURN(QueryDef def, GetQueryDef(query));
  const bool serverless = opts.platform == Platform::kLambda ||
                          opts.platform == Platform::kS3Select;
  if (serverless && (opts.world_size & (opts.world_size - 1)) != 0) {
    return Status::InvalidArgument(
        "serverless platforms require a power-of-two worker count");
  }

  Env env;
  env.platform = opts.platform;
  env.fused = opts.exec.enable_fusion;
  env.world = opts.world_size;
  env.exec = opts.exec;
  env.tag = "q" + std::to_string(query) + "-run" +
            std::to_string(g_run_counter.fetch_add(1));

  // Rank/worker plan factory: identical structure on every rank.
  auto make_plan = [&def, env](int worker) -> SubOpPtr {
    Env rank_env = env;  // fresh exchange counter per construction
    auto plan = std::make_unique<PipelinePlan>();
    std::string out = def.build(plan.get(), &rank_env);
    if (rank_env.serverless()) {
      // Workers publish their partial result to S3 (MaterializeParquet →
      // driver-side ParquetScan path of Fig. 7).
      plan->SetOutput(std::make_unique<MaterializeColumnFile>(
          plan->MakeRef(out), def.rank_schema,
          rank_env.tag + "/result-" + std::to_string(worker) + ".mcf"));
    } else {
      plan->SetOutput(plan->MakeRef(out));
    }
    return plan;
  };

  // Collect rank partials at the driver.
  RowVectorPtr partials = RowVector::Make(def.rank_schema);
  ExecContext driver;
  driver.options = opts.exec;
  driver.stats = stats;

  auto path_params = [&ctx](int rank) {
    Tuple t;
    for (int tb = 0; tb < kNumPlanTables; ++tb) {
      t.push_back(Item(ctx.paths[tb][rank]));
    }
    return t;
  };

  if (!serverless) {
    MpiExecutor::Config config;
    config.world_size = opts.world_size;
    config.fabric = opts.fabric;
    if (opts.platform == Platform::kRdma) {
      config.plan_factory = make_plan;
      config.rank_params = [&ctx](int rank) {
        Tuple t;
        for (int tb = 0; tb < kNumPlanTables; ++tb) {
          t.push_back(Item(ctx.frags[tb][rank]));
        }
        return t;
      };
    } else {
      // Disc-backed tables: install an NFS-profile client per rank.
      storage::BlobStore* store = ctx.store.get();
      storage::BlobClientOptions profile = opts.storage;
      config.plan_factory = [make_plan, store, profile](int rank) -> SubOpPtr {
        return std::make_unique<WithBlobClient>(make_plan(rank), store,
                                                profile);
      };
      config.rank_params = path_params;
    }
    MpiExecutor executor(std::move(config));
    MODULARIS_ASSIGN_OR_RETURN(
        RowVectorPtr rows,
        plans::DrainCollections(&executor, &driver, def.rank_schema));
    partials = rows;
  } else {
    LambdaExecutor::Config config;
    config.lambda = opts.lambda;
    config.lambda.num_workers = opts.world_size;
    config.lambda.s3 = opts.storage;
    config.store = ctx.store.get();
    config.s3select = ctx.s3select.get();
    config.plan_factory = make_plan;
    config.worker_params = path_params;

    // The driver reads the workers' result files back from S3 (PS → CS
    // tail of Fig. 7).
    storage::BlobClient driver_client(ctx.store.get(), opts.storage, -1);
    driver.blob = &driver_client;
    ColumnFileScan::Options copts;
    copts.retry = opts.exec.retry;
    auto scan = std::make_unique<ColumnScan>(
        std::make_unique<ColumnFileScan>(
            std::make_unique<LambdaExecutor>(std::move(config)), copts),
        def.rank_schema);
    MODULARIS_RETURN_NOT_OK(scan->Open(&driver));
    Tuple t;
    while (scan->Next(&t)) {
      partials->AppendRaw(t[0].row().data());
    }
    MODULARIS_RETURN_NOT_OK(scan->status());
    MODULARIS_RETURN_NOT_OK(scan->Close());
  }

  // Driver-side merge: ReduceByKey → finalize Map → Sort/TopK (the RK /
  // TK / MR tail of Figs. 6 and 7).
  SubOpPtr cur = std::make_unique<CollectionSource>(
      std::vector<RowVectorPtr>{partials});
  Schema cur_schema = def.rank_schema;
  if (def.merge) {
    auto rk = std::make_unique<ReduceByKey>(std::move(cur), def.merge_keys,
                                            def.merge_aggs, cur_schema,
                                            "phase.driver_merge");
    cur_schema = rk->out_schema();
    cur = std::move(rk);
  } else {
    cur = std::make_unique<RowScan>(std::move(cur));
  }
  if (!def.finalize.empty()) {
    cur = std::make_unique<MapOp>(std::move(cur), def.final_schema,
                                  def.finalize);
    cur_schema = def.final_schema;
  }
  if (!def.sort.empty()) {
    // Distinct driver-phase timer keys so the final ORDER BY [LIMIT]
    // (Q3's top-10, Q18's top-100) never aliases a rank-side sort phase
    // in the stats breakdown. Both operators share one emit path and the
    // morsel-parallel run-sort + loser-tree merge; TopK additionally
    // bounds per-run selection to `limit` rows instead of fully sorting
    // the merged partials.
    if (def.limit > 0) {
      cur = std::make_unique<TopK>(std::move(cur), def.sort, def.limit,
                                   cur_schema, "phase.driver_topk");
    } else {
      cur = std::make_unique<SortOp>(std::move(cur), def.sort, cur_schema,
                                     "phase.driver_sort");
    }
  }
  auto mr = std::make_unique<MaterializeRowVector>(std::move(cur),
                                                   def.final_schema);
  return plans::DrainCollections(mr.get(), &driver, def.final_schema);
}

}  // namespace modularis::tpch
