#ifndef MODULARIS_TPCH_REFERENCE_H_
#define MODULARIS_TPCH_REFERENCE_H_

#include "core/row_vector.h"
#include "tpch/schema.h"

/// \file reference.h
/// Single-threaded, loop-based reference implementations of the eight
/// evaluated TPC-H queries. They are the correctness oracle for every
/// platform's Modularis plans and the compute core of the QaaS baseline
/// engines. Output schemas follow the spec (decimals as f64; AVG columns
/// derivable from the emitted sums/counts are omitted, see DESIGN.md).

namespace modularis::tpch {

/// ⟨l_returnflag, l_linestatus, sum_qty, sum_base_price, sum_disc_price,
///  sum_charge, count_order⟩ ordered by (returnflag, linestatus).
Schema Q1OutSchema();
RowVectorPtr ReferenceQ1(const TpchTables& db);

/// ⟨l_orderkey, revenue, o_orderdate, o_shippriority⟩
/// ordered by (revenue desc, o_orderdate), limit 10.
Schema Q3OutSchema();
RowVectorPtr ReferenceQ3(const TpchTables& db);

/// ⟨o_orderpriority, order_count⟩ ordered by o_orderpriority.
Schema Q4OutSchema();
RowVectorPtr ReferenceQ4(const TpchTables& db);

/// ⟨revenue⟩.
Schema Q6OutSchema();
RowVectorPtr ReferenceQ6(const TpchTables& db);

/// ⟨l_shipmode, high_line_count, low_line_count⟩ ordered by l_shipmode.
Schema Q12OutSchema();
RowVectorPtr ReferenceQ12(const TpchTables& db);

/// ⟨promo_revenue⟩ (percentage).
Schema Q14OutSchema();
RowVectorPtr ReferenceQ14(const TpchTables& db);

/// ⟨c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, sum_qty⟩
/// ordered by (o_totalprice desc, o_orderdate), limit 100.
Schema Q18OutSchema();
RowVectorPtr ReferenceQ18(const TpchTables& db);

/// ⟨revenue⟩.
Schema Q19OutSchema();
RowVectorPtr ReferenceQ19(const TpchTables& db);

/// Dispatch by query number (1, 3, 4, 6, 12, 14, 18, 19).
Result<RowVectorPtr> RunReferenceQuery(int query, const TpchTables& db);
Result<Schema> QueryOutSchema(int query);

}  // namespace modularis::tpch

#endif  // MODULARIS_TPCH_REFERENCE_H_
