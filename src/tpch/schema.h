#ifndef MODULARIS_TPCH_SCHEMA_H_
#define MODULARIS_TPCH_SCHEMA_H_

#include "core/column_table.h"
#include "core/types.h"

/// \file schema.h
/// TPC-H table schemas (the columns touched by the evaluated queries
/// Q1, Q3, Q4, Q6, Q12, Q14, Q18, Q19) and column-index constants.
/// Decimals are modelled as f64; dates as days since epoch.

namespace modularis::tpch {

Schema LineitemSchema();
Schema OrdersSchema();
Schema CustomerSchema();
Schema PartSchema();
Schema SupplierSchema();
Schema NationSchema();
Schema RegionSchema();
Schema PartsuppSchema();

// Column indices (must match the schemas above).
namespace l {
enum : int {
  kOrderKey = 0,
  kPartKey,
  kSuppKey,
  kLineNumber,
  kQuantity,
  kExtendedPrice,
  kDiscount,
  kTax,
  kReturnFlag,
  kLineStatus,
  kShipDate,
  kCommitDate,
  kReceiptDate,
  kShipInstruct,
  kShipMode,
};
}
namespace o {
enum : int {
  kOrderKey = 0,
  kCustKey,
  kOrderStatus,
  kTotalPrice,
  kOrderDate,
  kOrderPriority,
  kShipPriority,
};
}
namespace c {
enum : int { kCustKey = 0, kName, kMktSegment, kNationKey };
}
namespace p {
enum : int { kPartKey = 0, kBrand, kType, kSize, kContainer };
}
namespace s {
enum : int { kSuppKey = 0, kName, kNationKey };
}
namespace n {
enum : int { kNationKey = 0, kName, kRegionKey };
}
namespace r {
enum : int { kRegionKey = 0, kName };
}
namespace ps {
enum : int { kPartKey = 0, kSuppKey, kAvailQty, kSupplyCost };
}

/// The generated database (columnar base tables).
struct TpchTables {
  ColumnTablePtr lineitem;
  ColumnTablePtr orders;
  ColumnTablePtr customer;
  ColumnTablePtr part;
  ColumnTablePtr supplier;
  ColumnTablePtr nation;
  ColumnTablePtr region;
  ColumnTablePtr partsupp;
};

}  // namespace modularis::tpch

#endif  // MODULARIS_TPCH_SCHEMA_H_
