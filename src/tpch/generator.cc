#include "tpch/generator.h"

#include <algorithm>
#include <random>

namespace modularis::tpch {

namespace {

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "MACHINERY", "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                            "TAKE BACK RETURN"};
const char* kTypeSyl1[] = {"STANDARD", "SMALL",   "MEDIUM",
                           "LARGE",    "ECONOMY", "PROMO"};
const char* kTypeSyl2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                           "BRUSHED"};
const char* kTypeSyl3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainerSyl1[] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
const char* kContainerSyl2[] = {"CASE", "BOX", "BAG", "JAR",
                                "PKG",  "PACK", "CAN", "DRUM"};
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

/// dbgen's retail price formula (spec 4.2.3).
double RetailPrice(int64_t partkey) {
  return (90000.0 + (partkey % 200001) / 10.0 + 100.0 * (partkey % 1000)) /
         100.0;
}

}  // namespace

int64_t NumOrders(double sf) {
  return std::max<int64_t>(1, static_cast<int64_t>(1500000 * sf));
}
int64_t NumCustomers(double sf) {
  return std::max<int64_t>(1, static_cast<int64_t>(150000 * sf));
}
int64_t NumParts(double sf) {
  return std::max<int64_t>(1, static_cast<int64_t>(200000 * sf));
}
int64_t NumSuppliers(double sf) {
  return std::max<int64_t>(1, static_cast<int64_t>(10000 * sf));
}

TpchTables GenerateTpch(const GeneratorOptions& options) {
  const double sf = options.scale_factor;
  std::mt19937_64 rng(options.seed);
  auto uniform = [&rng](int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(rng);
  };

  TpchTables db;
  const int64_t num_orders = NumOrders(sf);
  const int64_t num_customers = NumCustomers(sf);
  const int64_t num_parts = NumParts(sf);
  const int64_t num_suppliers = NumSuppliers(sf);

  const int32_t start_date = DateFromYMD(1992, 1, 1);
  const int32_t end_date = DateFromYMD(1998, 8, 2);
  const int32_t current_date = DateFromYMD(1995, 6, 17);

  // -- region / nation -------------------------------------------------------
  db.region = ColumnTable::Make(RegionSchema());
  for (int i = 0; i < 5; ++i) {
    db.region->column(r::kRegionKey).AppendInt32(i);
    db.region->column(r::kName).AppendString(kRegions[i]);
  }
  db.region->FinishBulkLoad();

  db.nation = ColumnTable::Make(NationSchema());
  for (int i = 0; i < 25; ++i) {
    db.nation->column(n::kNationKey).AppendInt32(i);
    db.nation->column(n::kName).AppendString(kNations[i]);
    db.nation->column(n::kRegionKey).AppendInt32(i % 5);
  }
  db.nation->FinishBulkLoad();

  // -- customer --------------------------------------------------------------
  db.customer = ColumnTable::Make(CustomerSchema());
  for (int64_t k = 1; k <= num_customers; ++k) {
    db.customer->column(c::kCustKey).AppendInt64(k);
    db.customer->column(c::kName).AppendString("Customer#" +
                                               std::to_string(k));
    db.customer->column(c::kMktSegment)
        .AppendString(kSegments[uniform(0, 4)]);
    db.customer->column(c::kNationKey)
        .AppendInt32(static_cast<int32_t>(uniform(0, 24)));
  }
  db.customer->FinishBulkLoad();

  // -- supplier ---------------------------------------------------------------
  db.supplier = ColumnTable::Make(SupplierSchema());
  for (int64_t k = 1; k <= num_suppliers; ++k) {
    db.supplier->column(s::kSuppKey).AppendInt64(k);
    db.supplier->column(s::kName).AppendString("Supplier#" +
                                               std::to_string(k));
    db.supplier->column(s::kNationKey)
        .AppendInt32(static_cast<int32_t>(uniform(0, 24)));
  }
  db.supplier->FinishBulkLoad();

  // -- part -------------------------------------------------------------------
  db.part = ColumnTable::Make(PartSchema());
  for (int64_t k = 1; k <= num_parts; ++k) {
    db.part->column(p::kPartKey).AppendInt64(k);
    db.part->column(p::kBrand).AppendString(
        "Brand#" + std::to_string(uniform(1, 5)) +
        std::to_string(uniform(1, 5)));
    std::string type = std::string(kTypeSyl1[uniform(0, 5)]) + " " +
                       kTypeSyl2[uniform(0, 4)] + " " +
                       kTypeSyl3[uniform(0, 4)];
    db.part->column(p::kType).AppendString(type);
    db.part->column(p::kSize).AppendInt32(
        static_cast<int32_t>(uniform(1, 50)));
    db.part->column(p::kContainer)
        .AppendString(std::string(kContainerSyl1[uniform(0, 4)]) + " " +
                      kContainerSyl2[uniform(0, 7)]);
  }
  db.part->FinishBulkLoad();

  // -- partsupp ---------------------------------------------------------------
  db.partsupp = ColumnTable::Make(PartsuppSchema());
  for (int64_t k = 1; k <= num_parts; ++k) {
    for (int i = 0; i < 4; ++i) {
      db.partsupp->column(ps::kPartKey).AppendInt64(k);
      db.partsupp->column(ps::kSuppKey)
          .AppendInt64(1 + (k + i * (num_suppliers / 4 + 1)) % num_suppliers);
      db.partsupp->column(ps::kAvailQty)
          .AppendInt32(static_cast<int32_t>(uniform(1, 9999)));
      db.partsupp->column(ps::kSupplyCost)
          .AppendFloat64(static_cast<double>(uniform(100, 100000)) / 100.0);
    }
  }
  db.partsupp->FinishBulkLoad();

  // -- orders + lineitem -------------------------------------------------------
  db.orders = ColumnTable::Make(OrdersSchema());
  db.lineitem = ColumnTable::Make(LineitemSchema());
  for (int64_t okey = 1; okey <= num_orders; ++okey) {
    int32_t odate = static_cast<int32_t>(
        uniform(start_date, end_date - 151));
    int items = static_cast<int>(uniform(1, 7));
    double total = 0;
    int ship_count = 0;
    for (int line = 1; line <= items; ++line) {
      int64_t partkey = uniform(1, num_parts);
      double qty = static_cast<double>(uniform(1, 50));
      double price = RetailPrice(partkey) * qty;
      double discount = static_cast<double>(uniform(0, 10)) / 100.0;
      double tax = static_cast<double>(uniform(0, 8)) / 100.0;
      int32_t shipdate = odate + static_cast<int32_t>(uniform(1, 121));
      int32_t commitdate = odate + static_cast<int32_t>(uniform(30, 90));
      int32_t receiptdate = shipdate + static_cast<int32_t>(uniform(1, 30));

      db.lineitem->column(l::kOrderKey).AppendInt64(okey);
      db.lineitem->column(l::kPartKey).AppendInt64(partkey);
      db.lineitem->column(l::kSuppKey)
          .AppendInt64(1 + partkey % num_suppliers);
      db.lineitem->column(l::kLineNumber).AppendInt32(line);
      db.lineitem->column(l::kQuantity).AppendFloat64(qty);
      db.lineitem->column(l::kExtendedPrice).AppendFloat64(price);
      db.lineitem->column(l::kDiscount).AppendFloat64(discount);
      db.lineitem->column(l::kTax).AppendFloat64(tax);
      const char* flag =
          receiptdate <= current_date ? (uniform(0, 1) ? "R" : "A") : "N";
      db.lineitem->column(l::kReturnFlag).AppendString(flag);
      db.lineitem->column(l::kLineStatus)
          .AppendString(shipdate > current_date ? "O" : "F");
      db.lineitem->column(l::kShipDate).AppendInt32(shipdate);
      db.lineitem->column(l::kCommitDate).AppendInt32(commitdate);
      db.lineitem->column(l::kReceiptDate).AppendInt32(receiptdate);
      db.lineitem->column(l::kShipInstruct)
          .AppendString(kInstructs[uniform(0, 3)]);
      db.lineitem->column(l::kShipMode)
          .AppendString(kShipModes[uniform(0, 6)]);

      total += price * (1 - discount) * (1 + tax);
      if (shipdate > current_date) ++ship_count;
    }
    db.orders->column(o::kOrderKey).AppendInt64(okey);
    db.orders->column(o::kCustKey)
        .AppendInt64(uniform(1, num_customers));
    const char* status = ship_count == items ? "O"
                         : ship_count == 0   ? "F"
                                             : "P";
    db.orders->column(o::kOrderStatus).AppendString(status);
    db.orders->column(o::kTotalPrice).AppendFloat64(total);
    db.orders->column(o::kOrderDate).AppendInt32(odate);
    db.orders->column(o::kOrderPriority)
        .AppendString(kPriorities[uniform(0, 4)]);
    db.orders->column(o::kShipPriority).AppendInt32(0);
  }
  db.orders->FinishBulkLoad();
  db.lineitem->FinishBulkLoad();
  return db;
}

}  // namespace modularis::tpch
