#include "tpch/reference.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

// For CompareF64TotalOrder: the reference comparators must rank f64 sort
// keys by the engine's exact total order (NaN greatest, NaN == NaN) or
// reference parity would diverge — and the naive `a != b ? a > b : ...`
// lambdas here had the same strict-weak-ordering UB the engine fixed.
#include "suboperators/agg_ops.h"

namespace modularis::tpch {

namespace {

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace

// ---------------------------------------------------------------------------
// Q1: scan-heavy aggregation over lineitem
// ---------------------------------------------------------------------------

Schema Q1OutSchema() {
  return Schema({Field::Str("l_returnflag", 1), Field::Str("l_linestatus", 1),
                 Field::F64("sum_qty"), Field::F64("sum_base_price"),
                 Field::F64("sum_disc_price"), Field::F64("sum_charge"),
                 Field::I64("count_order")});
}

RowVectorPtr ReferenceQ1(const TpchTables& db) {
  const ColumnTable& li = *db.lineitem;
  const int32_t cutoff = DateFromYMD(1998, 12, 1) - 90;
  struct Acc {
    double qty = 0, base = 0, disc = 0, charge = 0;
    int64_t count = 0;
  };
  std::map<std::string, Acc> groups;  // key "RF|LS" (ordered output)
  for (size_t i = 0; i < li.num_rows(); ++i) {
    if (li.column(l::kShipDate).GetInt32(i) > cutoff) continue;
    std::string key = std::string(li.column(l::kReturnFlag).GetString(i)) +
                      "|" +
                      std::string(li.column(l::kLineStatus).GetString(i));
    Acc& a = groups[key];
    double qty = li.column(l::kQuantity).GetFloat64(i);
    double price = li.column(l::kExtendedPrice).GetFloat64(i);
    double disc = li.column(l::kDiscount).GetFloat64(i);
    double tax = li.column(l::kTax).GetFloat64(i);
    a.qty += qty;
    a.base += price;
    a.disc += price * (1 - disc);
    a.charge += price * (1 - disc) * (1 + tax);
    ++a.count;
  }
  RowVectorPtr out = RowVector::Make(Q1OutSchema());
  for (const auto& [key, a] : groups) {
    RowWriter w = out->AppendRow();
    w.SetString(0, key.substr(0, 1));
    w.SetString(1, key.substr(2, 1));
    w.SetFloat64(2, a.qty);
    w.SetFloat64(3, a.base);
    w.SetFloat64(4, a.disc);
    w.SetFloat64(5, a.charge);
    w.SetInt64(6, a.count);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Q3: customer ⋈ orders ⋈ lineitem, top-10 revenue
// ---------------------------------------------------------------------------

Schema Q3OutSchema() {
  return Schema({Field::I64("l_orderkey"), Field::F64("revenue"),
                 Field::Date("o_orderdate"), Field::I32("o_shippriority")});
}

RowVectorPtr ReferenceQ3(const TpchTables& db) {
  const int32_t date = DateFromYMD(1995, 3, 15);
  // Building customers.
  std::unordered_set<int64_t> building;
  for (size_t i = 0; i < db.customer->num_rows(); ++i) {
    if (db.customer->column(c::kMktSegment).GetString(i) == "BUILDING") {
      building.insert(db.customer->column(c::kCustKey).GetInt64(i));
    }
  }
  // Qualifying orders.
  struct OrderInfo {
    int32_t orderdate;
    int32_t shippriority;
  };
  std::unordered_map<int64_t, OrderInfo> orders;
  for (size_t i = 0; i < db.orders->num_rows(); ++i) {
    if (db.orders->column(o::kOrderDate).GetInt32(i) >= date) continue;
    if (!building.count(db.orders->column(o::kCustKey).GetInt64(i))) continue;
    orders[db.orders->column(o::kOrderKey).GetInt64(i)] =
        OrderInfo{db.orders->column(o::kOrderDate).GetInt32(i),
                  db.orders->column(o::kShipPriority).GetInt32(i)};
  }
  // Aggregate revenue per order.
  struct Group {
    double revenue = 0;
    OrderInfo info;
  };
  std::unordered_map<int64_t, Group> groups;
  const ColumnTable& li = *db.lineitem;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    if (li.column(l::kShipDate).GetInt32(i) <= date) continue;
    int64_t okey = li.column(l::kOrderKey).GetInt64(i);
    auto it = orders.find(okey);
    if (it == orders.end()) continue;
    Group& g = groups[okey];
    g.info = it->second;
    g.revenue += li.column(l::kExtendedPrice).GetFloat64(i) *
                 (1 - li.column(l::kDiscount).GetFloat64(i));
  }
  // Top 10 by revenue desc, orderdate asc.
  std::vector<std::pair<int64_t, Group>> rows(groups.begin(), groups.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    int c = CompareF64TotalOrder(a.second.revenue, b.second.revenue);
    if (c != 0) return c > 0;  // revenue desc (NaN would sort first)
    if (a.second.info.orderdate != b.second.info.orderdate) {
      return a.second.info.orderdate < b.second.info.orderdate;
    }
    return a.first < b.first;
  });
  RowVectorPtr out = RowVector::Make(Q3OutSchema());
  for (size_t i = 0; i < rows.size() && i < 10; ++i) {
    RowWriter w = out->AppendRow();
    w.SetInt64(0, rows[i].first);
    w.SetFloat64(1, rows[i].second.revenue);
    w.SetDate(2, rows[i].second.info.orderdate);
    w.SetInt32(3, rows[i].second.info.shippriority);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Q4: order priority checking (semi join)
// ---------------------------------------------------------------------------

Schema Q4OutSchema() {
  return Schema(
      {Field::Str("o_orderpriority", 15), Field::I64("order_count")});
}

RowVectorPtr ReferenceQ4(const TpchTables& db) {
  const int32_t lo = DateFromYMD(1993, 7, 1);
  const int32_t hi = AddMonths(lo, 3);
  std::unordered_set<int64_t> late;
  const ColumnTable& li = *db.lineitem;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    if (li.column(l::kCommitDate).GetInt32(i) <
        li.column(l::kReceiptDate).GetInt32(i)) {
      late.insert(li.column(l::kOrderKey).GetInt64(i));
    }
  }
  std::map<std::string, int64_t> counts;
  for (size_t i = 0; i < db.orders->num_rows(); ++i) {
    int32_t odate = db.orders->column(o::kOrderDate).GetInt32(i);
    if (odate < lo || odate >= hi) continue;
    if (!late.count(db.orders->column(o::kOrderKey).GetInt64(i))) continue;
    counts[std::string(db.orders->column(o::kOrderPriority).GetString(i))]++;
  }
  RowVectorPtr out = RowVector::Make(Q4OutSchema());
  for (const auto& [priority, count] : counts) {
    RowWriter w = out->AppendRow();
    w.SetString(0, priority);
    w.SetInt64(1, count);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Q6: selective filter + scalar aggregate
// ---------------------------------------------------------------------------

Schema Q6OutSchema() { return Schema({Field::F64("revenue")}); }

RowVectorPtr ReferenceQ6(const TpchTables& db) {
  const int32_t lo = DateFromYMD(1994, 1, 1);
  const int32_t hi = DateFromYMD(1995, 1, 1);
  double revenue = 0;
  const ColumnTable& li = *db.lineitem;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    int32_t ship = li.column(l::kShipDate).GetInt32(i);
    double disc = li.column(l::kDiscount).GetFloat64(i);
    if (ship < lo || ship >= hi) continue;
    if (disc < 0.05 - 1e-9 || disc > 0.07 + 1e-9) continue;
    if (li.column(l::kQuantity).GetFloat64(i) >= 24) continue;
    revenue += li.column(l::kExtendedPrice).GetFloat64(i) * disc;
  }
  RowVectorPtr out = RowVector::Make(Q6OutSchema());
  out->AppendRow().SetFloat64(0, revenue);
  return out;
}

// ---------------------------------------------------------------------------
// Q12: shipping modes and order priority (join + conditional agg)
// ---------------------------------------------------------------------------

Schema Q12OutSchema() {
  return Schema({Field::Str("l_shipmode", 10), Field::I64("high_line_count"),
                 Field::I64("low_line_count")});
}

RowVectorPtr ReferenceQ12(const TpchTables& db) {
  const int32_t lo = DateFromYMD(1994, 1, 1);
  const int32_t hi = DateFromYMD(1995, 1, 1);
  std::unordered_map<int64_t, bool> order_high;
  for (size_t i = 0; i < db.orders->num_rows(); ++i) {
    std::string_view prio = db.orders->column(o::kOrderPriority).GetString(i);
    order_high[db.orders->column(o::kOrderKey).GetInt64(i)] =
        prio == "1-URGENT" || prio == "2-HIGH";
  }
  std::map<std::string, std::pair<int64_t, int64_t>> counts;
  const ColumnTable& li = *db.lineitem;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    std::string_view mode = li.column(l::kShipMode).GetString(i);
    if (mode != "MAIL" && mode != "SHIP") continue;
    int32_t commit = li.column(l::kCommitDate).GetInt32(i);
    int32_t receipt = li.column(l::kReceiptDate).GetInt32(i);
    int32_t ship = li.column(l::kShipDate).GetInt32(i);
    if (!(commit < receipt && ship < commit)) continue;
    if (receipt < lo || receipt >= hi) continue;
    auto it = order_high.find(li.column(l::kOrderKey).GetInt64(i));
    if (it == order_high.end()) continue;
    auto& [high, low] = counts[std::string(mode)];
    if (it->second) {
      ++high;
    } else {
      ++low;
    }
  }
  RowVectorPtr out = RowVector::Make(Q12OutSchema());
  for (const auto& [mode, hl] : counts) {
    RowWriter w = out->AppendRow();
    w.SetString(0, mode);
    w.SetInt64(1, hl.first);
    w.SetInt64(2, hl.second);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Q14: promotion effect (join + conditional agg, percentage)
// ---------------------------------------------------------------------------

Schema Q14OutSchema() { return Schema({Field::F64("promo_revenue")}); }

RowVectorPtr ReferenceQ14(const TpchTables& db) {
  const int32_t lo = DateFromYMD(1995, 9, 1);
  const int32_t hi = AddMonths(lo, 1);
  std::unordered_set<int64_t> promo_parts;
  for (size_t i = 0; i < db.part->num_rows(); ++i) {
    if (StartsWith(db.part->column(p::kType).GetString(i), "PROMO")) {
      promo_parts.insert(db.part->column(p::kPartKey).GetInt64(i));
    }
  }
  double promo = 0, total = 0;
  const ColumnTable& li = *db.lineitem;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    int32_t ship = li.column(l::kShipDate).GetInt32(i);
    if (ship < lo || ship >= hi) continue;
    double rev = li.column(l::kExtendedPrice).GetFloat64(i) *
                 (1 - li.column(l::kDiscount).GetFloat64(i));
    total += rev;
    if (promo_parts.count(li.column(l::kPartKey).GetInt64(i))) promo += rev;
  }
  RowVectorPtr out = RowVector::Make(Q14OutSchema());
  out->AppendRow().SetFloat64(0, total == 0 ? 0 : 100.0 * promo / total);
  return out;
}

// ---------------------------------------------------------------------------
// Q18: large-volume customers (high-cardinality aggregation)
// ---------------------------------------------------------------------------

Schema Q18OutSchema() {
  return Schema({Field::Str("c_name", 25), Field::I64("c_custkey"),
                 Field::I64("o_orderkey"), Field::Date("o_orderdate"),
                 Field::F64("o_totalprice"), Field::F64("sum_qty")});
}

RowVectorPtr ReferenceQ18(const TpchTables& db) {
  std::unordered_map<int64_t, double> order_qty;
  const ColumnTable& li = *db.lineitem;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    order_qty[li.column(l::kOrderKey).GetInt64(i)] +=
        li.column(l::kQuantity).GetFloat64(i);
  }
  std::unordered_map<int64_t, std::string> cust_name;
  for (size_t i = 0; i < db.customer->num_rows(); ++i) {
    cust_name[db.customer->column(c::kCustKey).GetInt64(i)] =
        std::string(db.customer->column(c::kName).GetString(i));
  }
  struct Row {
    std::string name;
    int64_t custkey;
    int64_t orderkey;
    int32_t orderdate;
    double totalprice;
    double qty;
  };
  std::vector<Row> rows;
  for (size_t i = 0; i < db.orders->num_rows(); ++i) {
    int64_t okey = db.orders->column(o::kOrderKey).GetInt64(i);
    auto it = order_qty.find(okey);
    if (it == order_qty.end() || it->second <= 300) continue;
    int64_t ckey = db.orders->column(o::kCustKey).GetInt64(i);
    rows.push_back(Row{cust_name[ckey], ckey, okey,
                       db.orders->column(o::kOrderDate).GetInt32(i),
                       db.orders->column(o::kTotalPrice).GetFloat64(i),
                       it->second});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    int c = CompareF64TotalOrder(a.totalprice, b.totalprice);
    if (c != 0) return c > 0;  // totalprice desc (NaN would sort first)
    if (a.orderdate != b.orderdate) return a.orderdate < b.orderdate;
    return a.orderkey < b.orderkey;
  });
  RowVectorPtr out = RowVector::Make(Q18OutSchema());
  for (size_t i = 0; i < rows.size() && i < 100; ++i) {
    RowWriter w = out->AppendRow();
    w.SetString(0, rows[i].name);
    w.SetInt64(1, rows[i].custkey);
    w.SetInt64(2, rows[i].orderkey);
    w.SetDate(3, rows[i].orderdate);
    w.SetFloat64(4, rows[i].totalprice);
    w.SetFloat64(5, rows[i].qty);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Q19: discounted revenue (join + disjunctive predicate)
// ---------------------------------------------------------------------------

Schema Q19OutSchema() { return Schema({Field::F64("revenue")}); }

RowVectorPtr ReferenceQ19(const TpchTables& db) {
  struct PartInfo {
    std::string brand;
    std::string container;
    int32_t size;
  };
  std::unordered_map<int64_t, PartInfo> parts;
  for (size_t i = 0; i < db.part->num_rows(); ++i) {
    parts[db.part->column(p::kPartKey).GetInt64(i)] = PartInfo{
        std::string(db.part->column(p::kBrand).GetString(i)),
        std::string(db.part->column(p::kContainer).GetString(i)),
        db.part->column(p::kSize).GetInt32(i)};
  }
  auto in = [](const std::string& v,
               std::initializer_list<const char*> set) {
    for (const char* s : set) {
      if (v == s) return true;
    }
    return false;
  };
  double revenue = 0;
  const ColumnTable& li = *db.lineitem;
  for (size_t i = 0; i < li.num_rows(); ++i) {
    std::string_view mode = li.column(l::kShipMode).GetString(i);
    if (mode != "AIR" && mode != "REG AIR") continue;
    if (li.column(l::kShipInstruct).GetString(i) != "DELIVER IN PERSON") {
      continue;
    }
    auto it = parts.find(li.column(l::kPartKey).GetInt64(i));
    if (it == parts.end()) continue;
    const PartInfo& pi = it->second;
    double qty = li.column(l::kQuantity).GetFloat64(i);
    bool match =
        (pi.brand == "Brand#12" &&
         in(pi.container, {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}) &&
         qty >= 1 && qty <= 11 && pi.size >= 1 && pi.size <= 5) ||
        (pi.brand == "Brand#23" &&
         in(pi.container, {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}) &&
         qty >= 10 && qty <= 20 && pi.size >= 1 && pi.size <= 10) ||
        (pi.brand == "Brand#34" &&
         in(pi.container, {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}) &&
         qty >= 20 && qty <= 30 && pi.size >= 1 && pi.size <= 15);
    if (!match) continue;
    revenue += li.column(l::kExtendedPrice).GetFloat64(i) *
               (1 - li.column(l::kDiscount).GetFloat64(i));
  }
  RowVectorPtr out = RowVector::Make(Q19OutSchema());
  out->AppendRow().SetFloat64(0, revenue);
  return out;
}

// ---------------------------------------------------------------------------

Result<RowVectorPtr> RunReferenceQuery(int query, const TpchTables& db) {
  switch (query) {
    case 1: return ReferenceQ1(db);
    case 3: return ReferenceQ3(db);
    case 4: return ReferenceQ4(db);
    case 6: return ReferenceQ6(db);
    case 12: return ReferenceQ12(db);
    case 14: return ReferenceQ14(db);
    case 18: return ReferenceQ18(db);
    case 19: return ReferenceQ19(db);
    default:
      return Status::InvalidArgument("unsupported TPC-H query " +
                                     std::to_string(query));
  }
}

Result<Schema> QueryOutSchema(int query) {
  switch (query) {
    case 1: return Q1OutSchema();
    case 3: return Q3OutSchema();
    case 4: return Q4OutSchema();
    case 6: return Q6OutSchema();
    case 12: return Q12OutSchema();
    case 14: return Q14OutSchema();
    case 18: return Q18OutSchema();
    case 19: return Q19OutSchema();
    default:
      return Status::InvalidArgument("unsupported TPC-H query " +
                                     std::to_string(query));
  }
}

}  // namespace modularis::tpch
