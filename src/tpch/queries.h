#ifndef MODULARIS_TPCH_QUERIES_H_
#define MODULARIS_TPCH_QUERIES_H_

#include <memory>
#include <string>
#include <vector>

#include "core/stats.h"
#include "mpi/mpi_ops.h"
#include "serverless/lambda.h"
#include "serverless/s3select.h"
#include "serverless/serverless_ops.h"
#include "tpch/generator.h"
#include "tpch/reference.h"

/// \file queries.h
/// Modularis plans for the eight evaluated TPC-H queries across the three
/// platforms of the paper (§4.4, §4.5, Figs. 6–8). One plan builder per
/// query; only the executor + exchange + scan leaves change per platform —
/// the modularity claim under test.

namespace modularis::tpch {

/// Execution platform, matching the Fig. 8 configurations.
enum class Platform {
  kRdma,       // MPI executor, in-memory base tables ("w/o disc")
  kRdmaDisc,   // MPI executor, ColumnFiles on NFS-profile storage
  kLambda,     // serverless workers, ColumnFiles on S3, S3 exchange
  kS3Select,   // serverless workers, CSV on S3, pushdown into smart storage
};

const char* PlatformName(Platform platform);

struct TpchRunOptions {
  Platform platform = Platform::kRdma;
  /// Ranks (RDMA) or workers (serverless; must be a power of two).
  int world_size = 4;
  net::FabricOptions fabric;
  serverless::LambdaOptions lambda;
  serverless::S3SelectOptions s3select;
  /// Storage profile for base-table files (NFS for kRdmaDisc, S3 for
  /// serverless platforms).
  storage::BlobClientOptions storage;
  ExecOptions exec;

  /// Convenience constructors per platform with paper-calibrated
  /// profiles.
  static TpchRunOptions Rdma(int ranks, bool with_disc = false);
  static TpchRunOptions Lambda(int workers);
  static TpchRunOptions S3Select(int workers);
};

/// Platform-prepared database: in-memory fragments and/or stored files.
/// Non-copyable (owns the object store).
struct TpchContext {
  Platform platform;
  int world_size = 0;
  /// frags[table][rank], tables ordered lineitem, orders, customer, part.
  std::vector<std::vector<RowVectorPtr>> frags;
  /// paths[table][shard] into `store`.
  std::vector<std::vector<std::string>> paths;
  std::unique_ptr<storage::BlobStore> store;
  std::unique_ptr<serverless::S3SelectEngine> s3select;
};

/// Number of tables a plan's parameter tuple carries (lineitem, orders,
/// customer, part).
inline constexpr int kNumPlanTables = 4;

/// Prepares the database for a platform (fragments, files, CSV objects).
Result<std::unique_ptr<TpchContext>> PrepareTpch(const TpchTables& db,
                                                 const TpchRunOptions& opts);

/// Runs query `query` (1, 3, 4, 6, 12, 14, 18, 19) on the prepared
/// context; returns the final result rows (schema per reference.h).
Result<RowVectorPtr> RunTpchQuery(int query, const TpchContext& ctx,
                                  const TpchRunOptions& opts,
                                  StatsRegistry* stats);

}  // namespace modularis::tpch

#endif  // MODULARIS_TPCH_QUERIES_H_
