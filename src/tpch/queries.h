#ifndef MODULARIS_TPCH_QUERIES_H_
#define MODULARIS_TPCH_QUERIES_H_

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/stats.h"
#include "mpi/mpi_ops.h"
#include "planner/cost.h"
#include "planner/lower.h"
#include "serverless/lambda.h"
#include "serverless/s3select.h"
#include "serverless/serverless_ops.h"
#include "tpch/generator.h"
#include "tpch/reference.h"

/// \file queries.h
/// The eight evaluated TPC-H queries across the three platforms of the
/// paper (§4.4, §4.5, Figs. 6–8). Each query is declared once as a
/// logical plan (TpchLogicalPlan); the planner optimizes it and lowers
/// it to the platform's sub-operator DAG — only the executor + exchange
/// + scan leaves change per platform, the modularity claim under test.

namespace modularis::tpch {

/// Execution platform, matching the Fig. 8 configurations.
enum class Platform {
  kRdma,       // MPI executor, in-memory base tables ("w/o disc")
  kRdmaDisc,   // MPI executor, ColumnFiles on NFS-profile storage
  kLambda,     // serverless workers, ColumnFiles on S3, S3 exchange
  kS3Select,   // serverless workers, CSV on S3, pushdown into smart storage
};

const char* PlatformName(Platform platform);

struct TpchRunOptions {
  Platform platform = Platform::kRdma;
  /// Ranks (RDMA) or workers (serverless; must be a power of two).
  int world_size = 4;
  net::FabricOptions fabric;
  serverless::LambdaOptions lambda;
  serverless::S3SelectOptions s3select;
  /// Storage profile for base-table files (NFS for kRdmaDisc, S3 for
  /// serverless platforms).
  storage::BlobClientOptions storage;
  ExecOptions exec;

  /// Convenience constructors per platform with paper-calibrated
  /// profiles.
  static TpchRunOptions Rdma(int ranks, bool with_disc = false);
  static TpchRunOptions Lambda(int workers);
  static TpchRunOptions S3Select(int workers);
};

/// Number of tables a plan's parameter tuple carries (lineitem, orders,
/// customer, part).
inline constexpr int kNumPlanTables = 4;

/// Platform-prepared database: in-memory fragments and/or stored files.
/// Non-copyable (owns the object store).
struct TpchContext {
  Platform platform;
  int world_size = 0;
  /// frags[table][rank], tables ordered lineitem, orders, customer, part.
  std::vector<std::vector<RowVectorPtr>> frags;
  /// paths[table][shard] into `store`.
  std::vector<std::vector<std::string>> paths;
  /// Total rows per table (catalog statistics for the planner).
  std::array<size_t, kNumPlanTables> table_rows{};
  std::unique_ptr<storage::BlobStore> store;
  std::unique_ptr<serverless::S3SelectEngine> s3select;
};

/// Prepares the database for a platform (fragments, files, CSV objects).
Result<std::unique_ptr<TpchContext>> PrepareTpch(const TpchTables& db,
                                                 const TpchRunOptions& opts);

/// The declarative logical plan of query `query` (1, 3, 4, 6, 12, 14,
/// 18, 19): the full tree including the driver tail, authored over the
/// full table schemas. Predicate pushdown, constant folding, join
/// ordering and column pruning are the planner's job, not the query
/// author's.
Result<planner::LogicalPlanPtr> TpchLogicalPlan(int query);

/// Planner catalog: per-table row counts (from a prepared context's
/// `table_rows`) plus hardcoded TPC-H domain statistics (distinct counts
/// and date/value ranges from the spec).
planner::Catalog TpchCatalog(const std::array<size_t, kNumPlanTables>& rows);

/// Per-rank plan-construction environment. Copied per rank; the exchange
/// counter yields identical (shared) object prefixes on every rank.
/// Public so tests can drive RunTpchQuerySpec with hand-built plans.
struct TpchPlanEnv {
  Platform platform = Platform::kRdma;
  bool fused = true;
  int world = 1;
  ExecOptions exec;
  std::string tag;  // unique per query run; prefixes exchange objects
  int next_exchange = 0;

  bool serverless() const {
    return platform == Platform::kLambda || platform == Platform::kS3Select;
  }
};

/// A runnable query = per-rank plan builder + driver-side merge
/// specification. RunTpchQuery derives one from the logical plan; the
/// differential-oracle tests build them by hand (the frozen pre-planner
/// plan shapes) and run both through the same harness.
struct TpchQuerySpec {
  /// Builds the rank plan; returns the name of the pipeline holding the
  /// rank's partial result.
  std::function<std::string(PipelinePlan*, TpchPlanEnv*)> build;
  Schema rank_schema;

  bool merge = false;                 // re-aggregate at the driver
  std::vector<int> merge_keys;
  std::vector<AggSpec> merge_aggs;
  ExprPtr merge_having;               // HAVING over the merged groups
  std::vector<MapOutput> finalize;    // over merged schema (empty = id)
  Schema final_schema;
  std::vector<SortKey> sort;
  size_t limit = 0;
};

/// Runs `spec` on the prepared context: executor fan-out, partial
/// collection, then the driver-side merge → finalize → sort/top-k tail.
Result<RowVectorPtr> RunTpchQuerySpec(const TpchQuerySpec& spec,
                                      const TpchContext& ctx,
                                      const TpchRunOptions& opts,
                                      StatsRegistry* stats);

/// Runs query `query` on the prepared context via the planner: logical
/// plan → Optimize → SplitAtDriver → LowerRankPlan per rank; returns the
/// final result rows (schema per reference.h).
Result<RowVectorPtr> RunTpchQuery(int query, const TpchContext& ctx,
                                  const TpchRunOptions& opts,
                                  StatsRegistry* stats);

}  // namespace modularis::tpch

#endif  // MODULARIS_TPCH_QUERIES_H_
