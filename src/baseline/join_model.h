#ifndef MODULARIS_BASELINE_JOIN_MODEL_H_
#define MODULARIS_BASELINE_JOIN_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "core/row_vector.h"
#include "core/stats.h"
#include "net/fabric.h"

/// \file join_model.h
/// The "model" of paper §5.2.2: each join phase microbenchmarked in
/// isolation on ideal inputs, using the same sub-operators as the full
/// Fig. 3 plan but without the enclosing pipelines/nested plans. The model
/// is the per-phase performance Modularis' components can achieve; Fig. 9a
/// plots original vs model vs full plan.

namespace modularis::baseline {

struct JoinModelOptions {
  int world_size = 4;
  net::FabricOptions fabric;
  int network_radix_bits = 6;
  int local_radix_bits = 6;
  bool compress = true;
  int key_domain_bits = 29;
  size_t buffer_bytes = 1 << 16;
};

/// Runs all phase microbenchmarks over per-rank kv16 fragments and
/// returns phase-name → seconds (max over ranks), keys matching the full
/// plan's: phase.local_histogram, phase.global_histogram,
/// phase.network_partition, phase.local_partition, phase.build_probe.
Result<std::map<std::string, double>> RunJoinModel(
    const std::vector<RowVectorPtr>& inner,
    const std::vector<RowVectorPtr>& outer, const JoinModelOptions& options);

}  // namespace modularis::baseline

#endif  // MODULARIS_BASELINE_JOIN_MODEL_H_
