#include "baseline/tpch_baselines.h"

#include <chrono>
#include <thread>

namespace modularis::baseline {

namespace {

using Clock = std::chrono::steady_clock;

double Elapsed(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

/// Rough size of the columns a query touches, for the QaaS scan model.
double ScannedBytes(int query, const tpch::TpchTables& db) {
  auto table_bytes = [](const ColumnTablePtr& t, int cols_used) {
    return static_cast<double>(t->num_rows()) * cols_used * 8.0;
  };
  switch (query) {
    case 1: return table_bytes(db.lineitem, 7);
    case 3:
      return table_bytes(db.lineitem, 4) + table_bytes(db.orders, 4) +
             table_bytes(db.customer, 2);
    case 4: return table_bytes(db.lineitem, 3) + table_bytes(db.orders, 3);
    case 6: return table_bytes(db.lineitem, 4);
    case 12: return table_bytes(db.lineitem, 5) + table_bytes(db.orders, 2);
    case 14: return table_bytes(db.lineitem, 4) + table_bytes(db.part, 2);
    case 18:
      return table_bytes(db.lineitem, 2) + table_bytes(db.orders, 4) +
             table_bytes(db.customer, 2);
    case 19: return table_bytes(db.lineitem, 6) + table_bytes(db.part, 4);
    default: return 0;
  }
}

/// QaaS cost model parameters.
struct QaasProfile {
  double startup_seconds;
  double scan_bytes_per_sec;       // aggregate fleet scan bandwidth
  double compute_parallelism;      // speedup over single-threaded compute
};

Result<BaselineRunResult> RunQaas(const QaasProfile& profile, int query,
                                  const tpch::TpchTables& db,
                                  StatsRegistry* stats) {
  auto start = Clock::now();
  MODULARIS_ASSIGN_OR_RETURN(RowVectorPtr rows,
                             tpch::RunReferenceQuery(query, db));
  double compute = Elapsed(start);
  double scan = ScannedBytes(query, db) / profile.scan_bytes_per_sec;
  double modelled =
      profile.startup_seconds + scan + compute / profile.compute_parallelism;
  stats->AddTime("qaas.startup", profile.startup_seconds);
  stats->AddTime("qaas.scan", scan);
  stats->AddTime("qaas.compute", compute / profile.compute_parallelism);
  if (modelled > compute) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(modelled - compute));
  }
  BaselineRunResult result;
  result.rows = std::move(rows);
  result.seconds = Elapsed(start);
  return result;
}

}  // namespace

const char* BaselineName(BaselineSystem system) {
  switch (system) {
    case BaselineSystem::kPresto: return "presto-profile";
    case BaselineSystem::kSingleStore: return "singlestore-profile";
    case BaselineSystem::kAthena: return "athena-profile";
    case BaselineSystem::kBigQuery: return "bigquery-profile";
  }
  return "?";
}

Result<BaselineRunResult> RunBaselineTpch(BaselineSystem system, int query,
                                          const tpch::TpchTables& db,
                                          int world_size,
                                          StatsRegistry* stats) {
  switch (system) {
    case BaselineSystem::kPresto: {
      // Interpreted row-at-a-time engine on disk-backed storage with a
      // two-sided TCP exchange and coordinator startup overhead.
      tpch::TpchRunOptions opts =
          tpch::TpchRunOptions::Rdma(world_size, /*with_disc=*/true);
      opts.fabric = net::FabricOptions::TcpProfile();
      opts.exec.tcp_exchange = true;  // two-sided shuffle, no RDMA
      opts.exec.enable_fusion = false;
      opts.storage.profile = "hdfs";
      opts.storage.request_latency_seconds = 0.002;
      opts.storage.bandwidth_bytes_per_sec = 150e6;
      MODULARIS_ASSIGN_OR_RETURN(auto ctx, tpch::PrepareTpch(db, opts));
      auto start = Clock::now();
      std::this_thread::sleep_for(
          std::chrono::duration<double>(0.35));  // coordinator + JVM
      MODULARIS_ASSIGN_OR_RETURN(
          RowVectorPtr rows, tpch::RunTpchQuery(query, *ctx, opts, stats));
      BaselineRunResult result;
      result.rows = std::move(rows);
      result.seconds = Elapsed(start);
      return result;
    }
    case BaselineSystem::kSingleStore: {
      // Warm in-memory columnar engine: fused execution, broadcast joins
      // for small build sides, TCP-profile interconnect.
      tpch::TpchRunOptions opts = tpch::TpchRunOptions::Rdma(world_size);
      opts.fabric = net::FabricOptions::TcpProfile();
      opts.exec.broadcast_small_build = true;
      MODULARIS_ASSIGN_OR_RETURN(auto ctx, tpch::PrepareTpch(db, opts));
      auto start = Clock::now();
      MODULARIS_ASSIGN_OR_RETURN(
          RowVectorPtr rows, tpch::RunTpchQuery(query, *ctx, opts, stats));
      BaselineRunResult result;
      result.rows = std::move(rows);
      result.seconds = Elapsed(start);
      return result;
    }
    case BaselineSystem::kAthena:
      return RunQaas(QaasProfile{1.1, 6.0e9, 24.0}, query, db, stats);
    case BaselineSystem::kBigQuery:
      return RunQaas(QaasProfile{1.9, 8.0e9, 32.0}, query, db, stats);
  }
  return Status::InvalidArgument("unknown baseline system");
}

}  // namespace modularis::baseline
