#include "baseline/monolithic_join.h"

#include <cstring>

#include "core/row_vector.h"
#include "suboperators/radix.h"

namespace modularis::baseline {

namespace {

/// Per-rank state of the hand-tuned join. Everything is specialized to
/// the 16-byte workload; there is deliberately no abstraction boundary
/// between phases (that is the point of the comparison).
class JoinWorker {
 public:
  JoinWorker(const MonolithicJoinOptions& opts, mpi::Communicator* comm,
             const RowVector& inner, const RowVector& outer,
             StatsRegistry* stats)
      : opts_(opts),
        comm_(comm),
        inner_(inner),
        outer_(outer),
        stats_(stats),
        fanout_(1 << opts.network_radix_bits),
        mask_(fanout_ - 1) {}

  Status Run(RowVectorPtr* result);

 private:
  struct Relation {
    const RowVector* input;
    std::vector<int64_t> local_hist;
    std::vector<int64_t> global_hist;
    std::vector<std::vector<int64_t>> all_local;
    net::WindowId window = -1;
    std::vector<int64_t> partition_base;  // rows, within owner window
    int64_t my_rows = 0;                  // rows landing in my window
  };

  void LocalHistogram(Relation* rel);
  Status GlobalHistogram(Relation* rel);
  Status NetworkPartition(Relation* rel);
  int Owner(int pid) const { return pid % comm_->size(); }

  const MonolithicJoinOptions& opts_;
  mpi::Communicator* comm_;
  const RowVector& inner_;
  const RowVector& outer_;
  StatsRegistry* stats_;
  const int fanout_;
  const uint32_t mask_;
};

void JoinWorker::LocalHistogram(Relation* rel) {
  rel->local_hist.assign(fanout_, 0);
  const uint8_t* p = rel->input->data();
  const size_t n = rel->input->size();
  for (size_t i = 0; i < n; ++i, p += 16) {
    int64_t key;
    std::memcpy(&key, p, 8);
    ++rel->local_hist[key & mask_];
  }
}

Status JoinWorker::GlobalHistogram(Relation* rel) {
  rel->global_hist = rel->local_hist;
  MODULARIS_RETURN_NOT_OK(comm_->AllreduceSum(&rel->global_hist));
  return comm_->AllgatherI64(rel->local_hist, &rel->all_local);
}

Status JoinWorker::NetworkPartition(Relation* rel) {
  const int world = comm_->size();
  const int me = comm_->rank();
  const uint32_t out_row = opts_.compress ? 8 : 16;

  // Window layout: my partitions in ascending pid order.
  rel->partition_base.assign(fanout_, 0);
  std::vector<int64_t> owner_rows(world, 0);
  for (int pid = 0; pid < fanout_; ++pid) {
    rel->partition_base[pid] = owner_rows[Owner(pid)];
    owner_rows[Owner(pid)] += rel->global_hist[pid];
  }
  rel->my_rows = owner_rows[me];
  MODULARIS_ASSIGN_OR_RETURN(
      rel->window,
      comm_->WinAllocate(static_cast<size_t>(rel->my_rows) * out_row));

  std::vector<int64_t> write_offset(fanout_);
  for (int pid = 0; pid < fanout_; ++pid) {
    int64_t before = 0;
    for (int r = 0; r < me; ++r) before += rel->all_local[r][pid];
    write_offset[pid] = rel->partition_base[pid] + before;
  }

  // Software write-combining buffers + asynchronous one-sided writes.
  const size_t buf_rows = std::max<size_t>(1, opts_.buffer_bytes / out_row);
  std::vector<std::vector<uint8_t>> buffers(fanout_);
  std::vector<size_t> filled(fanout_, 0);
  for (auto& b : buffers) b.resize(buf_rows * out_row);

  const int P = opts_.key_domain_bits;
  const int F = opts_.network_radix_bits;
  const uint8_t* p = rel->input->data();
  const size_t n = rel->input->size();
  for (size_t i = 0; i < n; ++i, p += 16) {
    int64_t key, value;
    std::memcpy(&key, p, 8);
    std::memcpy(&value, p + 8, 8);
    uint32_t pid = static_cast<uint32_t>(key) & mask_;
    uint8_t* dst = buffers[pid].data() + filled[pid] * out_row;
    if (opts_.compress) {
      int64_t word = ((key >> F) << P) | value;
      std::memcpy(dst, &word, 8);
    } else {
      std::memcpy(dst, p, 16);
    }
    if (++filled[pid] == buf_rows) {
      MODULARIS_RETURN_NOT_OK(comm_->WinPut(
          Owner(pid), rel->window,
          static_cast<size_t>(write_offset[pid]) * out_row,
          buffers[pid].data(), filled[pid] * out_row));
      write_offset[pid] += static_cast<int64_t>(filled[pid]);
      filled[pid] = 0;
    }
  }
  for (int pid = 0; pid < fanout_; ++pid) {
    if (filled[pid] == 0) continue;
    MODULARIS_RETURN_NOT_OK(comm_->WinPut(
        Owner(pid), rel->window,
        static_cast<size_t>(write_offset[pid]) * out_row,
        buffers[pid].data(), filled[pid] * out_row));
    filled[pid] = 0;
  }
  return comm_->WinFlush();
}

Status JoinWorker::Run(RowVectorPtr* result) {
  const int me = comm_->rank();
  const int world = comm_->size();
  const uint32_t net_row = opts_.compress ? 8 : 16;
  const int P = opts_.key_domain_bits;
  const int F = opts_.network_radix_bits;
  const int L = opts_.local_radix_bits;
  const int local_fanout = 1 << L;

  Relation rels[2] = {{&inner_, {}, {}, {}, -1, {}, 0},
                      {&outer_, {}, {}, {}, -1, {}, 0}};

  // Phase 1+2: histograms for both relations, computed sequentially (the
  // original's structure, which the paper notes avoids interleaving
  // collectives with partitioning).
  {
    ScopedTimer t(stats_, "phase.local_histogram");
    LocalHistogram(&rels[0]);
    LocalHistogram(&rels[1]);
  }
  {
    ScopedTimer t(stats_, "phase.global_histogram");
    MODULARIS_RETURN_NOT_OK(GlobalHistogram(&rels[0]));
    MODULARIS_RETURN_NOT_OK(GlobalHistogram(&rels[1]));
  }

  // Phase 3: network partitioning for both relations back to back, one
  // flush + barrier at the end.
  {
    ScopedTimer t(stats_, "phase.network_partition");
    MODULARIS_RETURN_NOT_OK(NetworkPartition(&rels[0]));
    MODULARIS_RETURN_NOT_OK(NetworkPartition(&rels[1]));
    MODULARIS_RETURN_NOT_OK(comm_->Barrier());
  }

  // Phase 4: local radix partitioning, hand-tuned: single contiguous
  // output buffer per relation with prefix offsets.
  struct LocalParts {
    std::vector<uint8_t> data;                 // all rows, grouped by lpid
    std::vector<std::vector<int64_t>> begin;   // [net pid][lpid] row offset
    std::vector<std::vector<int64_t>> count;
  };
  LocalParts parts[2];
  {
    ScopedTimer t(stats_, "phase.local_partition");
    for (int rel_index = 0; rel_index < 2; ++rel_index) {
      Relation& rel = rels[rel_index];
      LocalParts& lp = parts[rel_index];
      lp.data.resize(static_cast<size_t>(rel.my_rows) * net_row);
      const uint8_t* win = comm_->WinData(rel.window);
      for (int pid = me; pid < fanout_; pid += world) {
        const uint8_t* src =
            win + static_cast<size_t>(rel.partition_base[pid]) * net_row;
        int64_t rows = rel.global_hist[pid];
        std::vector<int64_t> hist(local_fanout, 0);
        const int shift = opts_.compress ? P : F;
        const uint8_t* q = src;
        for (int64_t i = 0; i < rows; ++i, q += net_row) {
          int64_t w;
          std::memcpy(&w, q, 8);
          ++hist[(w >> shift) & (local_fanout - 1)];
        }
        std::vector<int64_t> offsets(local_fanout, 0);
        int64_t base = rel.partition_base[pid];
        std::vector<int64_t> begins(local_fanout);
        for (int lp_id = 0; lp_id < local_fanout; ++lp_id) {
          begins[lp_id] = base;
          offsets[lp_id] = base;
          base += hist[lp_id];
        }
        q = src;
        uint8_t* out_base = lp.data.data();
        for (int64_t i = 0; i < rows; ++i, q += net_row) {
          int64_t w;
          std::memcpy(&w, q, 8);
          int64_t& off = offsets[(w >> shift) & (local_fanout - 1)];
          std::memcpy(out_base + static_cast<size_t>(off) * net_row, q,
                      net_row);
          ++off;
        }
        lp.begin.push_back(std::move(begins));
        lp.count.push_back(std::move(hist));
      }
      MODULARIS_RETURN_NOT_OK(comm_->WinFree(rel.window));
    }
  }

  // Phase 5: build & probe each local partition pair; materialize
  // ⟨key, value, value_r⟩ rows.
  RowVectorPtr out = RowVector::Make(
      Schema({Field::I64("key"), Field::I64("value"),
              Field::I64("value_r")}));
  {
    ScopedTimer t(stats_, "phase.build_probe");
    out->Reserve(static_cast<size_t>(rels[1].my_rows));
    uint8_t row_buf[24];
    std::vector<uint32_t> heads;
    std::vector<uint32_t> next;
    std::vector<int64_t> keys;
    std::vector<int64_t> values;
    size_t part_index = 0;
    for (int pid = me; pid < fanout_; pid += world, ++part_index) {
      for (int lp_id = 0; lp_id < local_fanout; ++lp_id) {
        int64_t bn = parts[0].count[part_index][lp_id];
        int64_t pn = parts[1].count[part_index][lp_id];
        if (bn == 0 || pn == 0) continue;
        const uint8_t* brows =
            parts[0].data.data() +
            static_cast<size_t>(parts[0].begin[part_index][lp_id]) * net_row;
        const uint8_t* prows =
            parts[1].data.data() +
            static_cast<size_t>(parts[1].begin[part_index][lp_id]) * net_row;

        size_t buckets = 16;
        while (buckets < static_cast<size_t>(bn) * 2) buckets <<= 1;
        heads.assign(buckets, 0xFFFFFFFFu);
        next.assign(bn, 0xFFFFFFFFu);
        keys.resize(bn);
        values.resize(bn);
        const uint64_t bmask = buckets - 1;
        const uint8_t* q = brows;
        for (int64_t i = 0; i < bn; ++i, q += net_row) {
          int64_t w;
          std::memcpy(&w, q, 8);
          int64_t k = opts_.compress ? (w >> P) : w;
          keys[i] = k;
          if (opts_.compress) {
            values[i] = w & ((int64_t{1} << P) - 1);
          } else {
            std::memcpy(&values[i], q + 8, 8);
          }
          size_t slot = MixHash64(static_cast<uint64_t>(k)) & bmask;
          next[i] = heads[slot];
          heads[slot] = static_cast<uint32_t>(i);
        }
        q = prows;
        for (int64_t i = 0; i < pn; ++i, q += net_row) {
          int64_t w;
          std::memcpy(&w, q, 8);
          int64_t k = opts_.compress ? (w >> P) : w;
          int64_t v;
          if (opts_.compress) {
            v = w & ((int64_t{1} << P) - 1);
          } else {
            std::memcpy(&v, q + 8, 8);
          }
          size_t slot = MixHash64(static_cast<uint64_t>(k)) & bmask;
          for (uint32_t e = heads[slot]; e != 0xFFFFFFFFu; e = next[e]) {
            if (keys[e] != k) continue;
            int64_t full_key = opts_.compress ? ((k << F) | pid) : k;
            std::memcpy(row_buf, &full_key, 8);
            std::memcpy(row_buf + 8, &values[e], 8);
            std::memcpy(row_buf + 16, &v, 8);
            out->AppendRaw(row_buf);
          }
        }
      }
    }
  }
  *result = std::move(out);
  return Status::OK();
}

}  // namespace

Result<RowVectorPtr> RunMonolithicJoin(
    const std::vector<RowVectorPtr>& inner,
    const std::vector<RowVectorPtr>& outer,
    const MonolithicJoinOptions& options, StatsRegistry* stats) {
  if (static_cast<int>(inner.size()) != options.world_size ||
      static_cast<int>(outer.size()) != options.world_size) {
    return Status::InvalidArgument(
        "RunMonolithicJoin: need one fragment per rank");
  }
  std::vector<RowVectorPtr> results(options.world_size);
  std::vector<StatsRegistry> rank_stats(options.world_size);
  Status st = mpi::MpiRuntime::Run(
      options.world_size, options.fabric,
      [&](mpi::Communicator& comm) -> Status {
        const int r = comm.rank();
        JoinWorker worker(options, &comm, *inner[r], *outer[r],
                          &rank_stats[r]);
        MODULARIS_RETURN_NOT_OK(worker.Run(&results[r]));
        rank_stats[r].AddCounter("net.bytes_sent",
                                 comm.fabric().bytes_sent(r));
        rank_stats[r].AddCounter("net.msgs_sent",
                                 comm.fabric().msgs_sent(r));
        rank_stats[r].AddTime("net.charged_seconds",
                              comm.fabric().charged_seconds(r));
        return Status::OK();
      });
  MODULARIS_RETURN_NOT_OK(st);
  for (const StatsRegistry& rs : rank_stats) stats->MergeMax(rs);

  RowVectorPtr merged = results[0];
  for (int r = 1; r < options.world_size; ++r) {
    merged->AppendAll(*results[r]);
  }
  return merged;
}

}  // namespace modularis::baseline
