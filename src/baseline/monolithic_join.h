#ifndef MODULARIS_BASELINE_MONOLITHIC_JOIN_H_
#define MODULARIS_BASELINE_MONOLITHIC_JOIN_H_

#include <vector>

#include "core/row_vector.h"
#include "core/stats.h"
#include "mpi/communicator.h"
#include "net/fabric.h"

/// \file monolithic_join.h
/// The hand-tuned comparator of paper §5.2: the distributed radix hash
/// join of Barthels et al. [13, 14] written the way the original codebase
/// is written — one imperative class, phases inlined, data paths
/// specialized to the 16-byte ⟨key, value⟩ workload, no sub-operator
/// reuse, extended (like the paper does for fairness) with result
/// materialization. The SLOC of this file pair vs. the sub-operators used
/// by the Fig. 3 plan is the §5.2.1 comparison.

namespace modularis::baseline {

struct MonolithicJoinOptions {
  int world_size = 4;
  net::FabricOptions fabric;
  int network_radix_bits = 6;
  int local_radix_bits = 6;
  /// 16 → 8 byte key/value compression over the wire (as the original).
  bool compress = true;
  int key_domain_bits = 29;
  size_t buffer_bytes = 1 << 16;
};

/// Runs the monolithic join over per-rank kv16 fragments. Returns the
/// materialized ⟨key, value, value_r⟩ result; phase timings (same keys as
/// the modular plan: phase.local_histogram, phase.global_histogram,
/// phase.network_partition, phase.local_partition, phase.build_probe)
/// land in `stats` as the per-phase maximum over ranks.
Result<RowVectorPtr> RunMonolithicJoin(
    const std::vector<RowVectorPtr>& inner,
    const std::vector<RowVectorPtr>& outer,
    const MonolithicJoinOptions& options, StatsRegistry* stats);

}  // namespace modularis::baseline

#endif  // MODULARIS_BASELINE_MONOLITHIC_JOIN_H_
