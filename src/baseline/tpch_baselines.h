#ifndef MODULARIS_BASELINE_TPCH_BASELINES_H_
#define MODULARIS_BASELINE_TPCH_BASELINES_H_

#include <string>

#include "core/stats.h"
#include "tpch/queries.h"

/// \file tpch_baselines.h
/// The Fig. 8 comparator systems, rebuilt as documented synthetic
/// stand-ins (DESIGN.md §1). None of the four commercial systems can run
/// offline, so each profile reproduces the *architectural properties* the
/// paper attributes the comparison to:
///
///  * Presto profile ("RowEngine"): interpreted row-at-a-time execution
///    (fusion off), two-sided TCP exchange, disk-backed scans, fixed
///    coordinator overhead — a general, storage-agnostic engine.
///  * SingleStore profile ("ColumnEngine"): warm in-memory columnar scans,
///    fused execution, broadcast joins for small build sides (which beats
///    the histogram exchange on Q14/Q19-shaped joins — §5.1.1), but a
///    TCP-profile interconnect.
///  * Athena / BigQuery profiles ("QaasEngine"): managed query-as-a-
///    service cost model — fixed startup, storage-side columnar scan at
///    aggregate fleet bandwidth, internal parallel compute; results from
///    the reference engine.

namespace modularis::baseline {

enum class BaselineSystem {
  kPresto,
  kSingleStore,
  kAthena,
  kBigQuery,
};

const char* BaselineName(BaselineSystem system);

struct BaselineRunResult {
  RowVectorPtr rows;
  double seconds = 0;
};

/// Runs TPC-H query `query` through the given baseline profile.
/// `world_size` is the cluster/fleet size where applicable.
Result<BaselineRunResult> RunBaselineTpch(BaselineSystem system, int query,
                                          const tpch::TpchTables& db,
                                          int world_size,
                                          StatsRegistry* stats);

}  // namespace modularis::baseline

#endif  // MODULARIS_BASELINE_TPCH_BASELINES_H_
