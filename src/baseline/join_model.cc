#include "baseline/join_model.h"

#include "core/exec_context.h"
#include "mpi/mpi_ops.h"
#include "suboperators/agg_ops.h"
#include "suboperators/join_ops.h"
#include "suboperators/partition_ops.h"
#include "suboperators/scan_ops.h"

namespace modularis::baseline {

namespace {

/// Drains an operator, discarding output (the microbenchmark contract:
/// consume everything, keep nothing).
Status DrainDiscard(SubOperator* op, ExecContext* ctx,
                    std::vector<Tuple>* keep = nullptr) {
  MODULARIS_RETURN_NOT_OK(op->Open(ctx));
  Tuple t;
  std::vector<RowVectorPtr> arena;
  while (op->Next(&t)) {
    if (keep != nullptr) keep->push_back(OwnTuple(t, &arena));
  }
  MODULARIS_RETURN_NOT_OK(op->status());
  return op->Close();
}

}  // namespace

Result<std::map<std::string, double>> RunJoinModel(
    const std::vector<RowVectorPtr>& inner,
    const std::vector<RowVectorPtr>& outer,
    const JoinModelOptions& options) {
  RadixSpec net_spec{options.network_radix_bits, 0, RadixHash::kIdentity};
  RadixSpec local_spec{options.local_radix_bits,
                       options.compress ? options.key_domain_bits
                                        : options.network_radix_bits,
                       RadixHash::kIdentity};
  const Schema part_schema =
      options.compress ? CompressedSchema() : KeyValueSchema();

  std::vector<StatsRegistry> rank_stats(options.world_size);
  Status st = mpi::MpiRuntime::Run(
      options.world_size, options.fabric,
      [&](mpi::Communicator& comm) -> Status {
        const int r = comm.rank();
        ExecContext ctx;
        ctx.rank = r;
        ctx.world = comm.size();
        ctx.comm = &comm;
        ctx.stats = &rank_stats[r];
        ctx.options.network_radix_bits = options.network_radix_bits;
        ctx.options.local_radix_bits = options.local_radix_bits;
        ctx.options.key_domain_bits = options.key_domain_bits;

        // Phase 1 (isolated): local histograms straight over the inputs.
        std::vector<Tuple> hists[2];
        for (int side = 0; side < 2; ++side) {
          LocalHistogram lh(std::make_unique<CollectionSource>(
                                std::vector<RowVectorPtr>{
                                    side == 0 ? inner[r] : outer[r]}),
                            net_spec, 0);
          MODULARIS_RETURN_NOT_OK(DrainDiscard(&lh, &ctx, &hists[side]));
        }

        // Phase 2 (isolated): both allreduces back to back.
        std::vector<Tuple> global_hists[2];
        for (int side = 0; side < 2; ++side) {
          MpiHistogram mh(std::make_unique<TupleSource>(
              std::vector<Tuple>{hists[side][0]}));
          MODULARIS_RETURN_NOT_OK(
              DrainDiscard(&mh, &ctx, &global_hists[side]));
        }

        // Phase 3 (isolated): the network exchange alone, fed with the
        // precomputed histograms.
        std::vector<Tuple> exchanged[2];
        for (int side = 0; side < 2; ++side) {
          MpiExchange::Options xopts;
          xopts.spec = net_spec;
          xopts.compress = options.compress;
          xopts.domain_bits = options.key_domain_bits;
          xopts.buffer_bytes = options.buffer_bytes;
          MpiExchange mx(
              std::make_unique<CollectionSource>(std::vector<RowVectorPtr>{
                  side == 0 ? inner[r] : outer[r]}),
              std::make_unique<TupleSource>(
                  std::vector<Tuple>{hists[side][0]}),
              std::make_unique<TupleSource>(
                  std::vector<Tuple>{global_hists[side][0]}),
              xopts);
          MODULARIS_RETURN_NOT_OK(DrainDiscard(&mx, &ctx, &exchanged[side]));
        }

        // Phase 4 (isolated): local histogram + partition per network
        // partition, directly on the exchanged collections.
        std::vector<std::vector<Tuple>> local_parts[2];
        for (int side = 0; side < 2; ++side) {
          for (const Tuple& part : exchanged[side]) {
            const RowVectorPtr& data = part[1].collection();
            LocalHistogram lh(
                std::make_unique<CollectionSource>(
                    std::vector<RowVectorPtr>{data}),
                local_spec, 0, "phase.local_partition");
            std::vector<Tuple> hist;
            MODULARIS_RETURN_NOT_OK(DrainDiscard(&lh, &ctx, &hist));
            LocalPartition lp(std::make_unique<CollectionSource>(
                                  std::vector<RowVectorPtr>{data}),
                              std::make_unique<TupleSource>(
                                  std::vector<Tuple>{hist[0]}),
                              local_spec, 0, "phase.local_partition");
            std::vector<Tuple> out;
            MODULARIS_RETURN_NOT_OK(DrainDiscard(&lp, &ctx, &out));
            local_parts[side].push_back(std::move(out));
          }
        }

        // Phase 5 (isolated): build-probe per local partition pair.
        for (size_t np = 0; np < local_parts[0].size(); ++np) {
          const auto& build_parts = local_parts[0][np];
          const auto& probe_parts = local_parts[1][np];
          for (size_t lp_id = 0; lp_id < build_parts.size(); ++lp_id) {
            BuildProbe bp(
                std::make_unique<CollectionSource>(std::vector<RowVectorPtr>{
                    build_parts[lp_id][1].collection()}),
                std::make_unique<CollectionSource>(std::vector<RowVectorPtr>{
                    probe_parts[lp_id][1].collection()}),
                part_schema, part_schema, 0, 0, JoinType::kInner,
                options.compress ? options.key_domain_bits : 0);
            MODULARIS_RETURN_NOT_OK(DrainDiscard(&bp, &ctx));
          }
        }
        return Status::OK();
      });
  MODULARIS_RETURN_NOT_OK(st);

  StatsRegistry merged;
  for (const StatsRegistry& rs : rank_stats) merged.MergeMax(rs);
  return merged.times();
}

}  // namespace modularis::baseline
