#ifndef MODULARIS_MPI_MPI_OPS_H_
#define MODULARIS_MPI_MPI_OPS_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/sub_operator.h"
#include "mpi/communicator.h"
#include "suboperators/radix.h"

/// \file mpi_ops.h
/// The MPI-specific sub-operators (paper Table 1): the only operators that
/// are aware of the RDMA platform. Everything else in a plan is platform
/// agnostic — this is the modularity claim of the paper, and the reason
/// the Table 2 "platform-specific SLOC" count covers exactly these three
/// operators.

namespace modularis {

/// Schema of compressed exchange partitions: one 64-bit word per record
/// (paper §4.1.2: key and value packed into 8 bytes for dense domains).
Schema CompressedSchema();

/// Packs key/value into the 8-byte exchange word given the network radix
/// width F and the domain width P (2·P − F ≤ 64 required).
inline int64_t CompressKV(int64_t key, int64_t value, int radix_bits,
                          int domain_bits) {
  int64_t key_hi = key >> radix_bits;
  return (key_hi << domain_bits) | value;
}
/// Recovers ⟨key, value⟩ from a word and its network partition id.
inline void DecompressKV(int64_t word, int64_t pid, int radix_bits,
                         int domain_bits, int64_t* key, int64_t* value) {
  int64_t key_hi = word >> domain_bits;
  *key = (key_hi << radix_bits) | pid;
  *value = word & ((int64_t{1} << domain_bits) - 1);
}

/// MpiExecutor runs a nested plan on every rank of a simulated cluster in
/// a data-parallel fashion (the stacked frame of Fig. 3). The nested plan
/// is produced per rank by a factory; each rank's plan-input tuple comes
/// from `rank_params`. The executor collects every tuple the rank plans
/// emit and yields them (rank-ordered) to the driver-side remainder of
/// the plan.
class MpiExecutor : public SubOperator {
 public:
  struct Config {
    int world_size = 4;
    net::FabricOptions fabric;
    /// Builds rank `r`'s operator tree. Must be thread-compatible (called
    /// concurrently for distinct ranks).
    std::function<SubOpPtr(int rank)> plan_factory;
    /// Plan inputs for rank `r` (bound to its ParameterLookups). May be
    /// null when the nested plan has no inputs.
    std::function<Tuple(int rank)> rank_params;
    /// Destination for the blocking operators' spill files when
    /// ExecOptions::memory_limit_bytes forces graceful degradation
    /// (docs/DESIGN-memory.md). Null = spills fail fast with
    /// kResourceExhausted. Must be thread-safe (shared by all ranks).
    storage::BlobStore* spill_store = nullptr;
  };

  explicit MpiExecutor(Config config)
      : SubOperator("MpiExecutor"), config_(std::move(config)) {}

  Status Open(ExecContext* ctx) override;
  bool Next(Tuple* out) override;

 private:
  Config config_;
  std::vector<Tuple> results_;
  std::vector<std::vector<RowVectorPtr>> arenas_;
  size_t emit_pos_ = 0;
};

/// MpiHistogram turns a local radix histogram into the global one via
/// MPI_Allreduce (paper Fig. 3, operator "MH").
class MpiHistogram : public SubOperator {
 public:
  explicit MpiHistogram(SubOpPtr local_hist,
                        std::string timer_key = "phase.global_histogram")
      : SubOperator("MpiHistogram"), timer_key_(std::move(timer_key)) {
    AddChild(std::move(local_hist));
  }

  Status Open(ExecContext* ctx) override {
    done_ = false;
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override;

 private:
  std::string timer_key_;
  bool done_ = false;
};

/// MpiExchange is the RDMA-aware network partitioning operator modelled on
/// Barthels et al. [14] (§4.1.2):
///  1. allgathers local histograms to derive exclusive write offsets,
///  2. collectively allocates RMA windows sized from the global histogram,
///  3. radix-partitions its input into software write-combining buffers
///     flushed by asynchronous one-sided writes (optionally compressing
///     16-byte ⟨key,value⟩ records into 8-byte words),
///  4. flushes + barriers, then materializes each owned partition and
///     emits ⟨networkPartitionID, partitionData⟩ in ascending pid order.
/// Partition ownership is round-robin: owner(p) = p mod world.
///
/// With a thread budget, the scatter runs morsel-parallel inside the rank
/// (docs/DESIGN-exchange.md): static worker ranges are counted, each
/// (worker, partition) pair gets an exclusive window region whose offset
/// replays the serial input order, and every worker flushes its
/// write-combining buffers straight into async one-sided Puts while the
/// other workers are still partitioning — compute/network overlap with a
/// single Flush/Barrier at drain end. N threads × R ranks is byte-equal
/// to 1 × R per owned partition.
class MpiExchange : public SubOperator {
 public:
  struct Options {
    RadixSpec spec;             // network radix pass (shift 0)
    int key_col = 0;
    bool compress = false;      // §4.1.2 compression pass output
    int domain_bits = 29;       // P
    size_t buffer_bytes = 1 << 16;
    /// Ablation baseline for the overlap measurement (bench/tests only):
    /// stage the whole scatter locally and ship every partition after
    /// partitioning completes — partition-then-send-then-wait, the very
    /// schedule the pipelined default exists to beat on stall time.
    bool serial_wire = false;
    std::string timer_key = "phase.network_partition";
  };

  /// Children: data, local histogram, global histogram (paper Fig. 3).
  MpiExchange(SubOpPtr data, SubOpPtr local_hist, SubOpPtr global_hist,
              Options options)
      : SubOperator("MpiExchange"), opts_(std::move(options)) {
    AddChild(std::move(data));
    AddChild(std::move(local_hist));
    AddChild(std::move(global_hist));
  }

  Status Open(ExecContext* ctx) override {
    exchanged_ = false;
    emit_pos_ = 0;
    out_parts_.clear();
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override;

  /// Record projection of the stream (docs/DESIGN-vectorized.md): each
  /// owned partition as one durable borrowed batch in ascending pid order
  /// (the pid atom is only observable through Next()). Next() and
  /// NextBatch() share the emit cursor, so each partition is delivered
  /// exactly once per Open, whichever protocol pulls it.
  bool NextBatch(RowBatch* out) override;

 private:
  Status DoExchange();

  Options opts_;
  bool exchanged_ = false;
  size_t emit_pos_ = 0;
  /// ⟨pid, partitionData⟩ for every partition this rank owns.
  std::vector<std::pair<int64_t, RowVectorPtr>> out_parts_;
};

/// MpiBroadcast replicates its (small) input on every rank via allgather —
/// the broadcast-join building block the histogram-based exchange loses to
/// on small joins (the paper's Q19 discussion, §5.1.1). Emits one tuple
/// holding the union collection of all ranks' inputs.
class MpiBroadcast : public SubOperator {
 public:
  MpiBroadcast(SubOpPtr data, Schema schema,
               std::string timer_key = "phase.broadcast")
      : SubOperator("MpiBroadcast"),
        schema_(std::move(schema)),
        timer_key_(std::move(timer_key)) {
    AddChild(std::move(data));
  }

  Status Open(ExecContext* ctx) override {
    done_ = false;
    merged_.reset();
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override;

  /// Record projection: the replicated union as one durable borrowed
  /// batch (Next() wraps the same collection in a tuple). The allgather
  /// payload is the packed RowVector bytes either way; the input side
  /// drains record streams through the batch protocol.
  bool NextBatch(RowBatch* out) override;

 private:
  /// Drains the input, allgathers the packed bytes and fills merged_.
  Status DoBroadcast();

  Schema schema_;
  std::string timer_key_;
  bool done_ = false;
  RowVectorPtr merged_;
};

}  // namespace modularis

#endif  // MODULARIS_MPI_MPI_OPS_H_
