#include "mpi/mpi_ops.h"

#include <algorithm>

#include "suboperators/partition_ops.h"
#include "suboperators/scan_ops.h"

namespace modularis {

Schema CompressedSchema() {
  return Schema({Field::I64("word")});
}

// ---------------------------------------------------------------------------
// MpiExecutor
// ---------------------------------------------------------------------------

Status MpiExecutor::Open(ExecContext* ctx) {
  ctx_ = ctx;
  status_ = Status::OK();
  results_.clear();
  arenas_.assign(config_.world_size, {});
  emit_pos_ = 0;

  std::vector<StatsRegistry> rank_stats(config_.world_size);
  std::vector<std::vector<Tuple>> rank_results(config_.world_size);
  const ExecOptions options = ctx->options;

  Status st = mpi::MpiRuntime::Run(
      config_.world_size, config_.fabric,
      [&](mpi::Communicator& comm) -> Status {
        const int r = comm.rank();
        ExecContext rctx;
        rctx.rank = r;
        rctx.world = comm.size();
        rctx.comm = &comm;
        rctx.options = options;
        // Ranks already run as concurrent threads on this machine: divide
        // the intra-node worker budget between them so a multi-rank run
        // does not oversubscribe the cores (world * per-rank workers <=
        // the resolved thread budget).
        rctx.options.num_threads =
            std::max(1, options.ResolvedNumThreads() / comm.size());
        rctx.stats = &rank_stats[r];
        Tuple params =
            config_.rank_params ? config_.rank_params(r) : Tuple{};
        rctx.PushParams(&params);

        ScopedTimer total(rctx.stats, "phase.rank_total");
        SubOpPtr plan = config_.plan_factory(r);
        MODULARIS_RETURN_NOT_OK(plan->Open(&rctx));
        Tuple t;
        while (plan->Next(&t)) {
          rank_results[r].push_back(OwnTuple(t, &arenas_[r]));
        }
        MODULARIS_RETURN_NOT_OK(plan->status());
        MODULARIS_RETURN_NOT_OK(plan->Close());
        total.Stop();

        // Snapshot fabric accounting before the world is torn down.
        rctx.stats->AddCounter("net.bytes_sent", comm.fabric().bytes_sent(r));
        rctx.stats->AddTime("net.charged", comm.fabric().charged_seconds(r));
        rctx.stats->AddTime("net.stall", comm.fabric().stall_seconds(r));
        return Status::OK();
      });
  MODULARIS_RETURN_NOT_OK(st);

  // Phase times are reported as the slowest rank (as in the paper's
  // breakdowns); counters accumulate.
  for (const StatsRegistry& rs : rank_stats) {
    ctx->stats->MergeMax(rs);
  }
  for (auto& tuples : rank_results) {
    for (Tuple& t : tuples) results_.push_back(std::move(t));
  }
  return Status::OK();
}

bool MpiExecutor::Next(Tuple* out) {
  if (emit_pos_ >= results_.size()) return false;
  *out = results_[emit_pos_++];
  return true;
}

// ---------------------------------------------------------------------------
// MpiHistogram
// ---------------------------------------------------------------------------

bool MpiHistogram::Next(Tuple* out) {
  if (done_) return false;
  Tuple t;
  if (!child(0)->Next(&t)) {
    if (!child(0)->status().ok()) return Fail(child(0)->status());
    return Fail(Status::InvalidArgument(
        "MpiHistogram: upstream yielded no local histogram"));
  }
  const RowVectorPtr& local = t[0].collection();
  std::vector<int64_t> counts(local->size());
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = local->row(i).GetInt64(0);
  }
  {
    ScopedTimer timer(ctx_->stats, timer_key_);
    ctx_->comm->AllreduceSum(&counts);
  }
  RowVectorPtr global = RowVector::Make(HistogramSchema());
  global->Reserve(counts.size());
  for (int64_t c : counts) global->AppendRow().SetInt64(0, c);
  done_ = true;
  out->clear();
  out->push_back(Item(std::move(global)));
  return true;
}

// ---------------------------------------------------------------------------
// MpiExchange
// ---------------------------------------------------------------------------

namespace {

std::vector<int64_t> ReadHistogram(const RowVector& hist) {
  std::vector<int64_t> counts(hist.size());
  for (size_t i = 0; i < hist.size(); ++i) {
    counts[i] = hist.row(i).GetInt64(0);
  }
  return counts;
}

}  // namespace

Status MpiExchange::DoExchange() {
  mpi::Communicator* comm = ctx_->comm;
  if (comm == nullptr) {
    return Status::Internal("MpiExchange requires an MPI communicator");
  }
  const int world = comm->size();
  const int me = comm->rank();
  const int fanout = opts_.spec.fanout();

  // Gather the input collections (the pipeline has materialized them).
  std::vector<RowVectorPtr> inputs;
  RowVectorPtr row_buffer;
  if (ctx_->options.enable_vectorized && child(0)->ProducesRecordStream()) {
    // Batched drain of record streams: durable whole-collection batches
    // are shared zero-copy; anything else is bulk-copied. Mixing demotes
    // to copies so the exchange scatters rows in stream order.
    RowBatch batch;
    while (child(0)->NextBatch(&batch)) {
      if (batch.empty()) continue;
      if (row_buffer == nullptr) {
        RowVectorPtr shared = batch.ShareWhole();
        if (shared != nullptr) {
          inputs.push_back(std::move(shared));
          continue;
        }
        row_buffer = RowVector::Make(batch.schema());
        for (const RowVectorPtr& prev : inputs) {
          row_buffer->Reserve(row_buffer->size() + prev->size());
          row_buffer->AppendAll(*prev);
        }
        inputs.clear();
      }
      row_buffer->AppendRawBatch(batch.data(), batch.size());
    }
    MODULARIS_RETURN_NOT_OK(child(0)->status());
    if (row_buffer != nullptr) inputs.push_back(std::move(row_buffer));
  } else {
    Tuple t;
    while (child(0)->Next(&t)) {
      const Item& item = t[0];
      if (item.is_collection()) {
        inputs.push_back(item.collection());
      } else if (item.is_row()) {
        if (row_buffer == nullptr) {
          row_buffer = RowVector::Make(item.row().schema());
        }
        row_buffer->AppendRaw(item.row().data());
      } else {
        return Status::InvalidArgument(
            "MpiExchange expects rows or collections, got " +
            item.ToString());
      }
    }
    MODULARIS_RETURN_NOT_OK(child(0)->status());
    if (row_buffer != nullptr) inputs.push_back(std::move(row_buffer));
  }

  // Histograms.
  Tuple hist_tuple;
  if (!child(1)->Next(&hist_tuple)) {
    MODULARIS_RETURN_NOT_OK(child(1)->status());
    return Status::InvalidArgument("MpiExchange: missing local histogram");
  }
  std::vector<int64_t> local_counts = ReadHistogram(*hist_tuple[0].collection());
  if (!child(2)->Next(&hist_tuple)) {
    MODULARIS_RETURN_NOT_OK(child(2)->status());
    return Status::InvalidArgument("MpiExchange: missing global histogram");
  }
  std::vector<int64_t> global_counts =
      ReadHistogram(*hist_tuple[0].collection());
  if (static_cast<int>(local_counts.size()) != fanout ||
      static_cast<int>(global_counts.size()) != fanout) {
    return Status::InvalidArgument("MpiExchange: histogram/fanout mismatch");
  }

  Schema in_schema =
      inputs.empty() ? KeyValueSchema() : inputs.front()->schema();
  if (opts_.compress) {
    if (in_schema.num_fields() != 2 ||
        in_schema.field(0).type != AtomType::kInt64 ||
        in_schema.field(1).type != AtomType::kInt64 ||
        opts_.spec.hash != RadixHash::kIdentity || opts_.spec.shift != 0) {
      return Status::InvalidArgument(
          "MpiExchange: compression requires a ⟨i64 key, i64 value⟩ "
          "workload with identity radix hashing");
    }
    if (2 * opts_.domain_bits - opts_.spec.bits > 64) {
      return Status::InvalidArgument(
          "MpiExchange: 2·P − F exceeds 64 bits; cannot compress");
    }
  }
  const Schema out_schema =
      opts_.compress ? CompressedSchema() : in_schema;
  const uint32_t out_row = out_schema.row_size();

  ScopedTimer timer(ctx_->stats, opts_.timer_key);

  // Exclusive write offsets from the allgathered local histograms.
  std::vector<std::vector<int64_t>> all_local =
      comm->AllgatherI64(local_counts);

  // Window layout at each owner: its partitions in ascending pid order.
  std::vector<int64_t> partition_base(fanout, 0);  // row offset at owner
  std::vector<int64_t> owner_rows(world, 0);
  for (int p = 0; p < fanout; ++p) {
    int owner = p % world;
    partition_base[p] = owner_rows[owner];
    owner_rows[owner] += global_counts[p];
  }

  // My starting write offset inside each partition's region.
  std::vector<int64_t> write_offset(fanout);  // in rows, absolute in window
  for (int p = 0; p < fanout; ++p) {
    int64_t before_me = 0;
    for (int r = 0; r < me; ++r) before_me += all_local[r][p];
    write_offset[p] = partition_base[p] + before_me;
  }

  net::WindowId window =
      comm->WinAllocate(static_cast<size_t>(owner_rows[me]) * out_row);

  // Software write-combining buffers, flushed by async one-sided writes.
  const size_t buf_rows =
      std::max<size_t>(1, opts_.buffer_bytes / out_row);
  std::vector<std::vector<uint8_t>> buffers(fanout);
  std::vector<size_t> buffered(fanout, 0);
  for (auto& b : buffers) b.resize(buf_rows * out_row);

  auto flush_partition = [&](int p) -> Status {
    if (buffered[p] == 0) return Status::OK();
    int owner = p % world;
    MODULARIS_RETURN_NOT_OK(comm->WinPut(
        owner, window, static_cast<size_t>(write_offset[p]) * out_row,
        buffers[p].data(), buffered[p] * out_row));
    write_offset[p] += static_cast<int64_t>(buffered[p]);
    buffered[p] = 0;
    return Status::OK();
  };

  const int key_col = opts_.key_col;
  const uint32_t in_row = in_schema.row_size();
  for (const RowVectorPtr& input : inputs) {
    const uint8_t* p = input->data();
    const size_t n = input->size();
    const uint32_t key_offset = in_schema.offset(key_col);
    const bool wide = in_schema.field(key_col).type == AtomType::kInt64;
    for (size_t i = 0; i < n; ++i, p += in_row) {
      int64_t key;
      if (wide) {
        std::memcpy(&key, p + key_offset, sizeof(key));
      } else {
        int32_t k32;
        std::memcpy(&k32, p + key_offset, sizeof(k32));
        key = k32;
      }
      uint32_t pid = opts_.spec.PartitionOf(key);
      uint8_t* dst = buffers[pid].data() + buffered[pid] * out_row;
      if (opts_.compress) {
        int64_t value;
        std::memcpy(&value, p + in_schema.offset(1), sizeof(value));
        int64_t word =
            CompressKV(key, value, opts_.spec.bits, opts_.domain_bits);
        std::memcpy(dst, &word, sizeof(word));
      } else {
        std::memcpy(dst, p, in_row);
      }
      if (++buffered[pid] == buf_rows) {
        MODULARIS_RETURN_NOT_OK(flush_partition(static_cast<int>(pid)));
      }
    }
  }
  for (int p = 0; p < fanout; ++p) {
    MODULARIS_RETURN_NOT_OK(flush_partition(p));
  }
  comm->WinFlush();
  comm->Barrier();  // all one-sided writes of all ranks have landed

  // Materialize owned partitions out of the window (the paper's extension
  // of the original algorithm, §4.1.2).
  const uint8_t* win = comm->WinData(window);
  for (int p = me; p < fanout; p += world) {
    RowVectorPtr part = RowVector::Make(out_schema);
    part->AppendRawBatch(
        win + static_cast<size_t>(partition_base[p]) * out_row,
        static_cast<size_t>(global_counts[p]));
    out_parts_.emplace_back(p, std::move(part));
  }
  timer.Stop();
  comm->WinFree(window);
  return Status::OK();
}

bool MpiBroadcast::Next(Tuple* out) {
  if (done_) return false;
  if (ctx_->comm == nullptr) {
    return Fail(Status::Internal("MpiBroadcast requires a communicator"));
  }
  RowVectorPtr local = RowVector::Make(schema_);
  Tuple t;
  while (child(0)->Next(&t)) {
    const Item& item = t[0];
    if (item.is_collection()) {
      local->AppendAll(*item.collection());
    } else if (item.is_row()) {
      local->AppendRaw(item.row().data());
    } else {
      return Fail(Status::InvalidArgument(
          "MpiBroadcast expects rows or collections, got " +
          item.ToString()));
    }
  }
  if (!child(0)->status().ok()) return Fail(child(0)->status());

  ScopedTimer timer(ctx_->stats, timer_key_);
  std::vector<uint8_t> bytes(local->data(),
                             local->data() + local->byte_size());
  std::vector<std::vector<uint8_t>> all =
      ctx_->comm->AllgatherBytes(bytes);
  RowVectorPtr merged = RowVector::Make(schema_);
  for (const auto& part : all) {
    merged->AppendRawBatch(part.data(), part.size() / schema_.row_size());
  }
  done_ = true;
  out->clear();
  out->push_back(Item(std::move(merged)));
  return true;
}

bool MpiExchange::Next(Tuple* out) {
  if (!exchanged_) {
    Status st = DoExchange();
    if (!st.ok()) return Fail(st);
    exchanged_ = true;
  }
  if (emit_pos_ >= out_parts_.size()) return false;
  out->clear();
  out->push_back(Item(out_parts_[emit_pos_].first));
  out->push_back(Item(out_parts_[emit_pos_].second));
  ++emit_pos_;
  return true;
}

}  // namespace modularis
