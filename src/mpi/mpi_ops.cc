#include "mpi/mpi_ops.h"

#include <algorithm>

#include "core/parallel.h"
#include "suboperators/partition_ops.h"
#include "suboperators/scan_ops.h"

namespace modularis {

Schema CompressedSchema() {
  return Schema({Field::I64("word")});
}

// ---------------------------------------------------------------------------
// MpiExecutor
// ---------------------------------------------------------------------------

Status MpiExecutor::Open(ExecContext* ctx) {
  ctx_ = ctx;
  status_ = Status::OK();
  results_.clear();
  arenas_.assign(config_.world_size, {});
  emit_pos_ = 0;

  std::vector<StatsRegistry> rank_stats(config_.world_size);
  std::vector<std::vector<Tuple>> rank_results(config_.world_size);
  const ExecOptions options = ctx->options;

  // One query-wide token: a failing rank cancels it (on top of poisoning
  // the world), so peers' morsel loops and blocking waits stop promptly;
  // the optional deadline bounds even a wedged blocking wait.
  CancellationToken cancel;
  cancel.SetDeadlineAfter(options.deadline_seconds);
  mpi::MpiRunReport report;

  Status st = mpi::MpiRuntime::Run(
      config_.world_size, config_.fabric,
      [&](mpi::Communicator& comm) -> Status {
        const int r = comm.rank();
        // Declared before the plan: operator ScopedCharges release into
        // the budget on plan destruction, so it must outlive the plan.
        MemoryBudget budget(options.memory_limit_bytes);
        ExecContext rctx;
        rctx.rank = r;
        rctx.world = comm.size();
        rctx.comm = &comm;
        rctx.cancel = &cancel;
        rctx.budget = &budget;
        rctx.spill_store = config_.spill_store;
        rctx.options = options;
        // Ranks already run as concurrent threads on this machine: divide
        // the intra-node worker budget between them so a multi-rank run
        // does not oversubscribe the cores (world * per-rank workers <=
        // the resolved thread budget).
        rctx.options.num_threads =
            std::max(1, options.ResolvedNumThreads() / comm.size());
        rctx.stats = &rank_stats[r];
        Tuple params =
            config_.rank_params ? config_.rank_params(r) : Tuple{};
        rctx.PushParams(&params);

        ScopedTimer total(rctx.stats, "phase.rank_total");
        SubOpPtr plan = config_.plan_factory(r);
        Status rank_st = [&]() -> Status {
          // Cancellation points: query start and every result tuple — the
          // morsel loops and blocking waits inside Open() check too, but a
          // serial plan on a tiny input must still honour the deadline.
          MODULARIS_RETURN_NOT_OK(cancel.Check());
          MODULARIS_RETURN_NOT_OK(plan->Open(&rctx));
          Tuple t;
          while (plan->Next(&t)) {
            MODULARIS_RETURN_NOT_OK(cancel.Check());
            rank_results[r].push_back(OwnTuple(t, &arenas_[r]));
          }
          MODULARIS_RETURN_NOT_OK(plan->status());
          return plan->Close();
        }();
        if (!rank_st.ok()) {
          // Stop peers' morsel loops too; the runtime poisons their
          // collectives and Recvs.
          cancel.Cancel(rank_st);
          return rank_st;
        }
        total.Stop();

        // Snapshot fabric accounting before the world is torn down.
        const double charged = comm.fabric().charged_seconds(r);
        const double stall = comm.fabric().stall_seconds(r);
        rctx.stats->AddCounter("net.bytes_sent", comm.fabric().bytes_sent(r));
        rctx.stats->AddCounter("net.msgs_sent", comm.fabric().msgs_sent(r));
        rctx.stats->AddTime("net.charged_seconds", charged);
        rctx.stats->AddTime("net.stall_seconds", stall);
        // Fraction of modelled wire time hidden behind compute: 1 when
        // every Put drained before Flush, 0 when the rank waited out the
        // full transfer time. Zero traffic counts as fully overlapped.
        double overlap =
            charged > 0 ? 1.0 - std::min(stall / charged, 1.0) : 1.0;
        rctx.stats->AddTime("exchange.overlap_ratio", overlap);
        // Memory governance counters (counters accumulate across ranks,
        // so mem.peak_bytes is the cross-rank sum of per-rank peaks —
        // docs/DESIGN-memory.md).
        if (budget.peak() > 0) {
          rctx.stats->AddCounter("mem.peak_bytes",
                                 static_cast<int64_t>(budget.peak()));
        }
        if (budget.denials() > 0) {
          rctx.stats->AddCounter("mem.denials", budget.denials());
        }
        return Status::OK();
      },
      &report);
  // Fabric-level "fault.injected.*" counters (one shared injector, so the
  // export happens exactly once per run, not per rank) — merged even on
  // failure so the faults that aborted the query show up in the stats.
  // ExecContext::stats is nullable: drivers that don't collect stats
  // still run.
  if (ctx->stats != nullptr) {
    ctx->stats->Merge(report.stats);
  }
  MODULARIS_RETURN_NOT_OK(st);

  // Phase times are reported as the slowest rank (as in the paper's
  // breakdowns); counters accumulate.
  if (ctx->stats != nullptr) {
    for (const StatsRegistry& rs : rank_stats) {
      ctx->stats->MergeMax(rs);
    }
  }
  for (auto& tuples : rank_results) {
    for (Tuple& t : tuples) results_.push_back(std::move(t));
  }
  return Status::OK();
}

bool MpiExecutor::Next(Tuple* out) {
  if (emit_pos_ >= results_.size()) return false;
  *out = results_[emit_pos_++];
  return true;
}

// ---------------------------------------------------------------------------
// MpiHistogram
// ---------------------------------------------------------------------------

bool MpiHistogram::Next(Tuple* out) {
  if (done_) return false;
  Tuple t;
  if (!child(0)->Next(&t)) {
    if (!child(0)->status().ok()) return Fail(child(0)->status());
    return Fail(Status::InvalidArgument(
        "MpiHistogram: upstream yielded no local histogram"));
  }
  const RowVectorPtr& local = t[0].collection();
  std::vector<int64_t> counts(local->size());
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = local->row(i).GetInt64(0);
  }
  {
    ScopedTimer timer(ctx_->stats, timer_key_);
    Status st = ctx_->comm->AllreduceSum(&counts);
    if (!st.ok()) return Fail(std::move(st));
  }
  RowVectorPtr global = RowVector::Make(HistogramSchema());
  global->Reserve(counts.size());
  for (int64_t c : counts) global->AppendRow().SetInt64(0, c);
  done_ = true;
  out->clear();
  out->push_back(Item(std::move(global)));
  return true;
}

// ---------------------------------------------------------------------------
// MpiExchange
// ---------------------------------------------------------------------------

namespace {

std::vector<int64_t> ReadHistogram(const RowVector& hist) {
  std::vector<int64_t> counts(hist.size());
  for (size_t i = 0; i < hist.size(); ++i) {
    counts[i] = hist.row(i).GetInt64(0);
  }
  return counts;
}

}  // namespace

Status MpiExchange::DoExchange() {
  mpi::Communicator* comm = ctx_->comm;
  if (comm == nullptr) {
    return Status::Internal("MpiExchange requires an MPI communicator");
  }
  const int world = comm->size();
  const int me = comm->rank();
  const int fanout = opts_.spec.fanout();

  // Gather the input collections (the pipeline has materialized them).
  std::vector<RowVectorPtr> inputs;
  RowVectorPtr row_buffer;
  if (ctx_->options.enable_vectorized && child(0)->ProducesRecordStream()) {
    // Batched drain of record streams: durable whole-collection batches
    // are shared zero-copy; anything else is bulk-copied. Mixing demotes
    // to copies so the exchange scatters rows in stream order.
    RowBatch batch;
    while (child(0)->NextBatch(&batch)) {
      if (batch.empty()) continue;
      if (row_buffer == nullptr) {
        RowVectorPtr shared = batch.ShareWhole();
        if (shared != nullptr) {
          inputs.push_back(std::move(shared));
          continue;
        }
        row_buffer = RowVector::Make(batch.schema());
        for (const RowVectorPtr& prev : inputs) {
          row_buffer->Reserve(row_buffer->size() + prev->size());
          row_buffer->AppendAll(*prev);
        }
        inputs.clear();
      }
      row_buffer->AppendRawBatch(batch.data(), batch.size());
    }
    MODULARIS_RETURN_NOT_OK(child(0)->status());
    if (row_buffer != nullptr) inputs.push_back(std::move(row_buffer));
  } else {
    Tuple t;
    while (child(0)->Next(&t)) {
      const Item& item = t[0];
      if (item.is_collection()) {
        inputs.push_back(item.collection());
      } else if (item.is_row()) {
        if (row_buffer == nullptr) {
          row_buffer = RowVector::Make(item.row().schema());
        }
        row_buffer->AppendRaw(item.row().data());
      } else {
        return Status::InvalidArgument(
            "MpiExchange expects rows or collections, got " +
            item.ToString());
      }
    }
    MODULARIS_RETURN_NOT_OK(child(0)->status());
    if (row_buffer != nullptr) inputs.push_back(std::move(row_buffer));
  }

  // Histograms.
  Tuple hist_tuple;
  if (!child(1)->Next(&hist_tuple)) {
    MODULARIS_RETURN_NOT_OK(child(1)->status());
    return Status::InvalidArgument("MpiExchange: missing local histogram");
  }
  std::vector<int64_t> local_counts = ReadHistogram(*hist_tuple[0].collection());
  if (!child(2)->Next(&hist_tuple)) {
    MODULARIS_RETURN_NOT_OK(child(2)->status());
    return Status::InvalidArgument("MpiExchange: missing global histogram");
  }
  std::vector<int64_t> global_counts =
      ReadHistogram(*hist_tuple[0].collection());
  if (static_cast<int>(local_counts.size()) != fanout ||
      static_cast<int>(global_counts.size()) != fanout) {
    return Status::InvalidArgument("MpiExchange: histogram/fanout mismatch");
  }

  Schema in_schema =
      inputs.empty() ? KeyValueSchema() : inputs.front()->schema();
  if (opts_.compress) {
    if (in_schema.num_fields() != 2 ||
        in_schema.field(0).type != AtomType::kInt64 ||
        in_schema.field(1).type != AtomType::kInt64 ||
        opts_.spec.hash != RadixHash::kIdentity || opts_.spec.shift != 0) {
      return Status::InvalidArgument(
          "MpiExchange: compression requires a ⟨i64 key, i64 value⟩ "
          "workload with identity radix hashing");
    }
    if (2 * opts_.domain_bits - opts_.spec.bits > 64) {
      return Status::InvalidArgument(
          "MpiExchange: 2·P − F exceeds 64 bits; cannot compress");
    }
  }
  const Schema out_schema =
      opts_.compress ? CompressedSchema() : in_schema;
  const uint32_t out_row = out_schema.row_size();

  ScopedTimer timer(ctx_->stats, opts_.timer_key);

  // Exclusive write offsets from the allgathered local histograms.
  std::vector<std::vector<int64_t>> all_local;
  MODULARIS_RETURN_NOT_OK(comm->AllgatherI64(local_counts, &all_local));

  // Window layout at each owner: its partitions in ascending pid order.
  std::vector<int64_t> partition_base(fanout, 0);  // row offset at owner
  std::vector<int64_t> owner_rows(world, 0);
  for (int p = 0; p < fanout; ++p) {
    int owner = p % world;
    partition_base[p] = owner_rows[owner];
    owner_rows[owner] += global_counts[p];
  }

  // My starting write offset inside each partition's region.
  std::vector<int64_t> write_offset(fanout);  // in rows, absolute in window
  for (int p = 0; p < fanout; ++p) {
    int64_t before_me = 0;
    for (int r = 0; r < me; ++r) before_me += all_local[r][p];
    write_offset[p] = partition_base[p] + before_me;
  }

  MODULARIS_ASSIGN_OR_RETURN(
      net::WindowId window,
      comm->WinAllocate(static_cast<size_t>(owner_rows[me]) * out_row));

  // Tracking-only budget accounting (docs/DESIGN-memory.md): the window,
  // wire staging and materialized partitions are transient per-exchange
  // footprint. They show up in mem.peak_bytes but never fail admission —
  // the exchange has no spill path to degrade to.
  ScopedCharge stage_charge(ctx_->budget);
  stage_charge.Add(static_cast<size_t>(owner_rows[me]) * out_row);

  const int key_col = opts_.key_col;
  const uint32_t in_row = in_schema.row_size();
  const uint32_t key_offset = in_schema.offset(key_col);
  const bool wide = in_schema.field(key_col).type == AtomType::kInt64;
  const uint32_t val_offset =
      in_schema.num_fields() > 1 ? in_schema.offset(1) : 0;
  auto load_key = [&](const uint8_t* p) -> int64_t {
    if (wide) {
      int64_t k;
      std::memcpy(&k, p + key_offset, sizeof(k));
      return k;
    }
    int32_t k32;
    std::memcpy(&k32, p + key_offset, sizeof(k32));
    return k32;
  };
  auto serialize_row = [&](const uint8_t* src, int64_t key, uint8_t* dst) {
    if (opts_.compress) {
      int64_t value;
      std::memcpy(&value, src + val_offset, sizeof(value));
      int64_t word =
          CompressKV(key, value, opts_.spec.bits, opts_.domain_bits);
      std::memcpy(dst, &word, sizeof(word));
    } else {
      std::memcpy(dst, src, in_row);
    }
  };

  // Serial-wire ablation staging (opts_.serial_wire): the scatter lands in
  // a local buffer laid out by local prefix offsets and ships only after
  // partitioning completes — no overlap, the baseline the stall gate
  // compares against.
  std::vector<int64_t> local_base(fanout, 0);
  int64_t local_total = 0;
  for (int p = 0; p < fanout; ++p) {
    local_base[p] = local_total;
    local_total += local_counts[p];
  }
  std::vector<uint8_t> wire_stage;
  if (opts_.serial_wire) {
    wire_stage.resize(static_cast<size_t>(local_total) * out_row);
    stage_charge.Add(wire_stage.size());
  }

  size_t total_rows = 0;
  for (const RowVectorPtr& input : inputs) total_rows += input->size();
  int workers = 1;
  if (ctx_->options.enable_vectorized && total_rows > 0) {
    workers = PlanWorkers(total_rows, ctx_->options);
  }

  if (workers > 1) {
    // Morsel-parallel two-phase scatter (docs/DESIGN-exchange.md): static
    // contiguous ranges are counted, each (worker, partition) pair gets an
    // exclusive region of the owner's window at an offset that replays the
    // serial input order, then every worker streams its range through
    // write-combining buffers flushed by concurrent async Puts — wire
    // traffic starts while other workers are still partitioning.
    RowVectorPtr flat;
    if (inputs.size() == 1) {
      flat = inputs.front();
    } else {
      flat = RowVector::Make(in_schema);
      flat->Reserve(total_rows);
      for (const RowVectorPtr& input : inputs) flat->AppendAll(*input);
    }
    const std::vector<size_t> bounds = SplitRows(total_rows, workers);
    std::vector<std::vector<int64_t>> worker_counts(
        workers, std::vector<int64_t>(fanout, 0));
    MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
      CountSpan(flat->data() + bounds[w] * in_row, bounds[w + 1] - bounds[w],
                in_schema, opts_.spec, key_col, worker_counts[w].data());
      return Status::OK();
    }));
    // The cross-rank window layout was derived from the local histogram;
    // a mismatch would corrupt a peer's window, so verify before writing.
    for (int p = 0; p < fanout; ++p) {
      int64_t counted = 0;
      for (int w = 0; w < workers; ++w) counted += worker_counts[w][p];
      if (counted != local_counts[p]) {
        return Status::InvalidArgument(
            "MpiExchange: local histogram count " +
            std::to_string(local_counts[p]) + " != counted rows " +
            std::to_string(counted) + " for partition " + std::to_string(p));
      }
    }
    std::vector<std::vector<int64_t>> offsets(
        workers, std::vector<int64_t>(fanout, 0));
    for (int p = 0; p < fanout; ++p) {
      int64_t off = opts_.serial_wire ? local_base[p] : write_offset[p];
      for (int w = 0; w < workers; ++w) {
        offsets[w][p] = off;
        off += worker_counts[w][p];
      }
    }
    // The write-combining budget is shared across the pool so the total
    // staging footprint matches the serial path's.
    const size_t buf_rows = std::max<size_t>(
        4, opts_.buffer_bytes / static_cast<size_t>(workers) / out_row);
    MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
      std::vector<uint8_t> stage(static_cast<size_t>(fanout) * buf_rows *
                                 out_row);
      std::vector<uint32_t> fill(fanout, 0);
      auto flush = [&](int p) -> Status {
        if (fill[p] == 0) return Status::OK();
        const uint8_t* buf =
            stage.data() + static_cast<size_t>(p) * buf_rows * out_row;
        if (opts_.serial_wire) {
          std::memcpy(
              wire_stage.data() + static_cast<size_t>(offsets[w][p]) * out_row,
              buf, fill[p] * out_row);
        } else {
          // An injected Put failure fires before any byte lands, so the
          // retry writes the same exclusive region exactly once.
          MODULARIS_RETURN_NOT_OK(RetryCall(
              ctx_->options.retry, ctx_->stats, "fabric.put",
              [&] {
                return comm->WinPut(
                    p % world, window,
                    static_cast<size_t>(offsets[w][p]) * out_row, buf,
                    fill[p] * out_row);
              },
              ctx_->cancel));
        }
        offsets[w][p] += fill[p];
        fill[p] = 0;
        return Status::OK();
      };
      const uint8_t* p_row = flat->data() + bounds[w] * in_row;
      for (size_t i = bounds[w]; i < bounds[w + 1]; ++i, p_row += in_row) {
        const int64_t key = load_key(p_row);
        const uint32_t pid = opts_.spec.PartitionOf(key);
        serialize_row(
            p_row, key,
            stage.data() +
                (static_cast<size_t>(pid) * buf_rows + fill[pid]) * out_row);
        if (++fill[pid] == buf_rows) {
          MODULARIS_RETURN_NOT_OK(flush(static_cast<int>(pid)));
        }
      }
      for (int p = 0; p < fanout; ++p) MODULARIS_RETURN_NOT_OK(flush(p));
      return Status::OK();
    }));
  } else {
    // Serial scatter through software write-combining buffers, flushed by
    // async one-sided writes as they fill.
    const size_t buf_rows = std::max<size_t>(1, opts_.buffer_bytes / out_row);
    std::vector<std::vector<uint8_t>> buffers(fanout);
    std::vector<size_t> buffered(fanout, 0);
    for (auto& b : buffers) b.resize(buf_rows * out_row);
    std::vector<int64_t> cursor =
        opts_.serial_wire ? local_base : write_offset;

    auto flush_partition = [&](int p) -> Status {
      if (buffered[p] == 0) return Status::OK();
      if (opts_.serial_wire) {
        std::memcpy(
            wire_stage.data() + static_cast<size_t>(cursor[p]) * out_row,
            buffers[p].data(), buffered[p] * out_row);
      } else {
        MODULARIS_RETURN_NOT_OK(RetryCall(
            ctx_->options.retry, ctx_->stats, "fabric.put",
            [&] {
              return comm->WinPut(
                  p % world, window, static_cast<size_t>(cursor[p]) * out_row,
                  buffers[p].data(), buffered[p] * out_row);
            },
            ctx_->cancel));
      }
      cursor[p] += static_cast<int64_t>(buffered[p]);
      buffered[p] = 0;
      return Status::OK();
    };

    for (const RowVectorPtr& input : inputs) {
      const uint8_t* p = input->data();
      const size_t n = input->size();
      for (size_t i = 0; i < n; ++i, p += in_row) {
        const int64_t key = load_key(p);
        const uint32_t pid = opts_.spec.PartitionOf(key);
        serialize_row(p, key,
                      buffers[pid].data() + buffered[pid] * out_row);
        if (++buffered[pid] == buf_rows) {
          MODULARIS_RETURN_NOT_OK(flush_partition(static_cast<int>(pid)));
        }
      }
    }
    for (int p = 0; p < fanout; ++p) {
      MODULARIS_RETURN_NOT_OK(flush_partition(p));
    }
  }

  if (opts_.serial_wire) {
    // Partition-then-send: every byte ships only now, after the scatter —
    // the whole wire time serializes behind compute and surfaces as
    // Flush stall.
    for (int p = 0; p < fanout; ++p) {
      if (local_counts[p] == 0) continue;
      MODULARIS_RETURN_NOT_OK(RetryCall(
          ctx_->options.retry, ctx_->stats, "fabric.put",
          [&] {
            return comm->WinPut(
                p % world, window,
                static_cast<size_t>(write_offset[p]) * out_row,
                wire_stage.data() +
                    static_cast<size_t>(local_base[p]) * out_row,
                static_cast<size_t>(local_counts[p]) * out_row);
          },
          ctx_->cancel));
    }
  }
  MODULARIS_RETURN_NOT_OK(
      RetryCall(ctx_->options.retry, ctx_->stats, "fabric.flush",
                [&] { return comm->WinFlush(); }, ctx_->cancel));
  // All one-sided writes of all ranks have landed.
  MODULARIS_RETURN_NOT_OK(comm->Barrier());

  // Materialize owned partitions out of the window (the paper's extension
  // of the original algorithm, §4.1.2) straight into batch-served
  // RowVectors, split across the pool — partitions are disjoint window
  // regions, so the copies are embarrassingly parallel.
  const uint8_t* win = comm->WinData(window);
  std::vector<int> owned;
  for (int p = me; p < fanout; p += world) owned.push_back(p);
  out_parts_.resize(owned.size());
  int mat_workers = 1;
  if (ctx_->options.enable_vectorized && !owned.empty()) {
    mat_workers = std::min<int>(
        PlanWorkers(static_cast<size_t>(owner_rows[me]), ctx_->options),
        static_cast<int>(owned.size()));
    if (mat_workers < 1) mat_workers = 1;
  }
  const std::vector<size_t> obounds = SplitRows(owned.size(), mat_workers);
  MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, mat_workers, [&](int w) -> Status {
    for (size_t i = obounds[w]; i < obounds[w + 1]; ++i) {
      const int p = owned[i];
      RowVectorPtr part = RowVector::Make(out_schema);
      part->AppendRawBatch(
          win + static_cast<size_t>(partition_base[p]) * out_row,
          static_cast<size_t>(global_counts[p]));
      out_parts_[i] = {p, std::move(part)};
    }
    return Status::OK();
  }));
  stage_charge.Add(static_cast<size_t>(owner_rows[me]) * out_row);
  timer.Stop();
  return comm->WinFree(window);
}

Status MpiBroadcast::DoBroadcast() {
  if (ctx_->comm == nullptr) {
    return Status::Internal("MpiBroadcast requires a communicator");
  }
  RowVectorPtr local = RowVector::Make(schema_);
  if (ctx_->options.enable_vectorized && child(0)->ProducesRecordStream()) {
    // Batched drain: the packed allgather payload is assembled from whole
    // batches (zero-copy when the upstream hands one durable collection).
    MODULARIS_RETURN_NOT_OK(DrainRecordStreamInto(child(0), &local));
  } else {
    Tuple t;
    while (child(0)->Next(&t)) {
      const Item& item = t[0];
      if (item.is_collection()) {
        local->AppendAll(*item.collection());
      } else if (item.is_row()) {
        local->AppendRaw(item.row().data());
      } else {
        return Status::InvalidArgument(
            "MpiBroadcast expects rows or collections, got " +
            item.ToString());
      }
    }
    MODULARIS_RETURN_NOT_OK(child(0)->status());
  }

  ScopedTimer timer(ctx_->stats, timer_key_);
  std::vector<uint8_t> bytes(local->data(),
                             local->data() + local->byte_size());
  std::vector<std::vector<uint8_t>> all;
  MODULARIS_RETURN_NOT_OK(ctx_->comm->AllgatherBytes(bytes, &all));
  merged_ = RowVector::Make(schema_);
  for (const auto& part : all) {
    merged_->AppendRawBatch(part.data(), part.size() / schema_.row_size());
  }
  return Status::OK();
}

bool MpiBroadcast::Next(Tuple* out) {
  if (done_) return false;
  Status st = DoBroadcast();
  if (!st.ok()) return Fail(std::move(st));
  done_ = true;
  out->clear();
  out->push_back(Item(merged_));
  return true;
}

bool MpiBroadcast::NextBatch(RowBatch* out) {
  out->Clear();
  if (done_) return false;
  Status st = DoBroadcast();
  if (!st.ok()) return Fail(std::move(st));
  done_ = true;
  if (merged_->empty()) return false;
  out->Borrow(merged_);
  out->MarkDurable();  // kept alive and unmutated for the whole Open cycle
  return true;
}

bool MpiExchange::Next(Tuple* out) {
  if (!exchanged_) {
    Status st = DoExchange();
    if (!st.ok()) return Fail(st);
    exchanged_ = true;
  }
  if (emit_pos_ >= out_parts_.size()) return false;
  out->clear();
  out->push_back(Item(out_parts_[emit_pos_].first));
  out->push_back(Item(out_parts_[emit_pos_].second));
  ++emit_pos_;
  return true;
}

bool MpiExchange::NextBatch(RowBatch* out) {
  out->Clear();
  if (!exchanged_) {
    Status st = DoExchange();
    if (!st.ok()) return Fail(st);
    exchanged_ = true;
  }
  while (emit_pos_ < out_parts_.size()) {
    const RowVectorPtr& part = out_parts_[emit_pos_].second;
    ++emit_pos_;
    if (part->empty()) continue;
    out->Borrow(part);
    out->MarkDurable();  // owned partitions live for the whole Open cycle
    return true;
  }
  return false;
}

}  // namespace modularis
