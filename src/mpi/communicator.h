#ifndef MODULARIS_MPI_COMMUNICATOR_H_
#define MODULARIS_MPI_COMMUNICATOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/status.h"
#include "net/fabric.h"

/// \file communicator.h
/// The MPI substitute (DESIGN.md §1): barrier, allreduce, allgather and
/// MPI-3-style one-sided windows over the simulated fabric. Ranks are
/// threads; collectives genuinely block on the slowest rank, reproducing
/// the collective-skew / tail-latency effects the paper analyzes in §5.2.2
/// (MPI_Allreduce waiting on stalled ranks, window allocation as a
/// collective, etc.).

namespace modularis::mpi {

class Communicator;

/// Shared state of one communicator group (one per MpiRuntime::Run call).
class World {
 public:
  World(int size, net::FabricOptions fabric_options)
      : size_(size), fabric_(size, std::move(fabric_options)) {}

  int size() const { return size_; }
  net::Fabric& fabric() { return fabric_; }

 private:
  friend class Communicator;

  struct CollectiveSlot {
    std::mutex mu;
    std::condition_variable cv;
    int arrived = 0;
    uint64_t generation = 0;
    std::vector<int64_t> reduce_acc;
    std::vector<std::vector<int64_t>> gather_parts;
    std::vector<std::vector<uint8_t>> gather_bytes;
  };

  const int size_;
  net::Fabric fabric_;
  CollectiveSlot slot_;
};

/// Per-rank handle to the world; mirrors the subset of the MPI API the
/// paper's operators use (OpenMPI 3.1.4 in their setup).
class Communicator {
 public:
  Communicator(int rank, World* world) : rank_(rank), world_(world) {}

  int rank() const { return rank_; }
  int size() const { return world_->size(); }
  net::Fabric& fabric() { return world_->fabric(); }

  /// MPI_Barrier.
  void Barrier();

  /// MPI_Allreduce(MPI_SUM) over an i64 vector, in place. All ranks must
  /// pass equally sized vectors.
  void AllreduceSum(std::vector<int64_t>* data);

  /// MPI_Allgather: returns every rank's vector, indexed by rank.
  std::vector<std::vector<int64_t>> AllgatherI64(
      const std::vector<int64_t>& local);

  /// MPI_Allgather over opaque byte payloads (used by broadcast joins).
  /// Transfer costs are charged through the fabric (each rank sends its
  /// payload to every other rank).
  std::vector<std::vector<uint8_t>> AllgatherBytes(
      const std::vector<uint8_t>& local);

  // -- One-sided (MPI-3 RMA over the fabric) --------------------------------

  /// Collective window allocation: every rank contributes a local window
  /// of `local_bytes`; the returned id addresses the matching window on
  /// every rank.
  net::WindowId WinAllocate(size_t local_bytes);

  /// One-sided write into `target`'s window (asynchronous).
  Status WinPut(int target, net::WindowId window, size_t offset,
                const void* data, size_t len);

  /// Completes all outstanding WinPuts issued by this rank.
  void WinFlush();

  /// Local access to this rank's own window.
  uint8_t* WinData(net::WindowId window);
  size_t WinSize(net::WindowId window);

  /// Collective window release.
  void WinFree(net::WindowId window);

 private:
  /// Generic rendezvous helper: the last-arriving rank runs `on_complete`
  /// while holding the slot lock, then everyone is released.
  void Rendezvous(const std::function<void(World::CollectiveSlot&)>& on_arrive,
                  const std::function<void(World::CollectiveSlot&)>&
                      on_complete);

  int rank_;
  World* world_;
};

/// Spawns a world of rank threads, runs `fn` on each, and joins them.
/// Returns the first non-OK per-rank status (if any).
class MpiRuntime {
 public:
  using RankFn = std::function<Status(Communicator&)>;

  static Status Run(int world_size, const net::FabricOptions& fabric_options,
                    const RankFn& fn);
};

}  // namespace modularis::mpi

#endif  // MODULARIS_MPI_COMMUNICATOR_H_
