#ifndef MODULARIS_MPI_COMMUNICATOR_H_
#define MODULARIS_MPI_COMMUNICATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/stats.h"
#include "core/status.h"
#include "net/fabric.h"

/// \file communicator.h
/// The MPI substitute (DESIGN.md §1): barrier, allreduce, allgather and
/// MPI-3-style one-sided windows over the simulated fabric. Ranks are
/// threads; collectives genuinely block on the slowest rank, reproducing
/// the collective-skew / tail-latency effects the paper analyzes in §5.2.2
/// (MPI_Allreduce waiting on stalled ranks, window allocation as a
/// collective, etc.).
///
/// Every collective is fallible (docs/DESIGN-fault-tolerance.md): a rank
/// that fails poisons the world, which wakes every peer blocked in a
/// rendezvous or a fabric Recv with kAborted instead of deadlocking them
/// on an arrival that will never come.

namespace modularis::mpi {

class Communicator;

/// Shared state of one communicator group (one per MpiRuntime::Run call).
class World {
 public:
  World(int size, net::FabricOptions fabric_options)
      : size_(size), fabric_(size, std::move(fabric_options)) {}

  int size() const { return size_; }
  net::Fabric& fabric() { return fabric_; }

  /// Marks the world dead with a failing rank's status: wakes every rank
  /// blocked in a collective or a fabric Recv. The first cause wins and is
  /// preserved verbatim (MpiRuntime::Run reports it as the run's status).
  void Poison(const Status& cause);

  bool poisoned() const {
    return poisoned_.load(std::memory_order_acquire);
  }
  /// The first failing rank's original status (OK while healthy).
  Status poison_cause() const;

 private:
  friend class Communicator;

  struct CollectiveSlot {
    std::mutex mu;
    std::condition_variable cv;
    int arrived = 0;
    uint64_t generation = 0;
    std::vector<int64_t> reduce_acc;
    std::vector<std::vector<int64_t>> gather_parts;
    std::vector<std::vector<uint8_t>> gather_bytes;
  };

  const int size_;
  net::Fabric fabric_;
  CollectiveSlot slot_;
  mutable std::mutex poison_mu_;
  std::atomic<bool> poisoned_{false};
  Status poison_cause_;  // guarded by poison_mu_
};

/// Per-rank handle to the world; mirrors the subset of the MPI API the
/// paper's operators use (OpenMPI 3.1.4 in their setup).
class Communicator {
 public:
  Communicator(int rank, World* world) : rank_(rank), world_(world) {}

  int rank() const { return rank_; }
  int size() const { return world_->size(); }
  net::Fabric& fabric() { return world_->fabric(); }
  World* world() { return world_; }

  /// Poisons the world with this rank's failure (peers' collectives and
  /// Recvs abort promptly). Idempotent; the first cause wins.
  void Abort(const Status& cause) { world_->Poison(cause); }

  /// MPI_Barrier. Returns kAborted when the world was poisoned.
  Status Barrier();

  /// MPI_Allreduce(MPI_SUM) over an i64 vector, in place. All ranks must
  /// pass equally sized vectors.
  Status AllreduceSum(std::vector<int64_t>* data);

  /// MPI_Allgather: fills `out` with every rank's vector, indexed by rank.
  Status AllgatherI64(const std::vector<int64_t>& local,
                      std::vector<std::vector<int64_t>>* out);

  /// MPI_Allgather over opaque byte payloads (used by broadcast joins).
  /// Transfer costs are charged through the fabric (each rank sends its
  /// payload to every other rank).
  Status AllgatherBytes(const std::vector<uint8_t>& local,
                        std::vector<std::vector<uint8_t>>* out);

  // -- One-sided (MPI-3 RMA over the fabric) --------------------------------

  /// Collective window allocation: every rank contributes a local window
  /// of `local_bytes`; the returned id addresses the matching window on
  /// every rank.
  Result<net::WindowId> WinAllocate(size_t local_bytes);

  /// One-sided write into `target`'s window (asynchronous).
  Status WinPut(int target, net::WindowId window, size_t offset,
                const void* data, size_t len);

  /// Completes all outstanding WinPuts issued by this rank.
  Status WinFlush();

  /// Local access to this rank's own window.
  uint8_t* WinData(net::WindowId window);
  size_t WinSize(net::WindowId window);

  /// Collective window release.
  Status WinFree(net::WindowId window);

 private:
  /// Generic rendezvous helper: the last-arriving rank runs `on_complete`
  /// while holding the slot lock, then everyone is released. Returns
  /// kAborted without waiting once the world is poisoned.
  Status Rendezvous(
      const std::function<void(World::CollectiveSlot&)>& on_arrive,
      const std::function<void(World::CollectiveSlot&)>& on_complete);

  int rank_;
  World* world_;
};

/// Per-run diagnostics of MpiRuntime::Run, for callers that need more
/// than the collapsed status: the status every rank returned (peers of a
/// failed rank report kAborted, never hang) and the fabric's
/// "fault.injected.*" counters.
struct MpiRunReport {
  std::vector<Status> rank_status;
  StatsRegistry stats;
};

/// Spawns a world of rank threads, runs `fn` on each, and joins them.
/// A failing rank poisons the world (waking peers blocked in collectives
/// and Recvs); the run returns that rank's original status.
class MpiRuntime {
 public:
  using RankFn = std::function<Status(Communicator&)>;

  static Status Run(int world_size, const net::FabricOptions& fabric_options,
                    const RankFn& fn, MpiRunReport* report = nullptr);
};

}  // namespace modularis::mpi

#endif  // MODULARIS_MPI_COMMUNICATOR_H_
