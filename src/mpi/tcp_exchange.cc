#include "mpi/tcp_exchange.h"

#include <algorithm>

#include "core/parallel.h"
#include "suboperators/partition_ops.h"

namespace modularis {

Status TcpExchange::DoExchange() {
  mpi::Communicator* comm = ctx_->comm;
  if (comm == nullptr) {
    return Status::Internal("TcpExchange requires a communicator");
  }
  const int world = comm->size();
  const int me = comm->rank();

  // Drain the input into one packed span (zero-copy when the upstream
  // hands a single durable collection through the batch protocol).
  Schema schema = KeyValueSchema();
  RowVectorPtr input;
  if (ctx_->options.enable_vectorized && child(0)->ProducesRecordStream()) {
    MODULARIS_RETURN_NOT_OK(DrainRecordStream(child(0), &input));
  } else {
    Tuple t;
    while (child(0)->Next(&t)) {
      const Item& item = t[0];
      if (item.is_collection()) {
        if (input == nullptr) {
          input = RowVector::Make(item.collection()->schema());
        }
        input->AppendAll(*item.collection());
      } else if (item.is_row()) {
        if (input == nullptr) {
          input = RowVector::Make(item.row().schema());
        }
        input->AppendRaw(item.row().data());
      } else {
        return Status::InvalidArgument(
            "TcpExchange expects rows or collections, got " +
            item.ToString());
      }
    }
    MODULARIS_RETURN_NOT_OK(child(0)->status());
  }
  if (input != nullptr) schema = input->schema();
  const size_t n = input == nullptr ? 0 : input->size();
  const uint32_t stride = schema.row_size();

  ScopedTimer timer(ctx_->stats, opts_.timer_key);

  // Route into one flat wire buffer ordered by destination rank; rows of a
  // destination replay input order, so N-thread routing is byte-equal to
  // serial per peer (docs/DESIGN-exchange.md).
  RowVectorPtr wire = RowVector::Make(schema);
  std::vector<size_t> dest_base(world + 1, 0);
  int workers = 1;
  if (n > 0 && ctx_->options.enable_vectorized) {
    workers = PlanWorkers(n, ctx_->options);
  }
  auto dest_of = [&](const uint8_t* p) -> uint32_t {
    uint64_t h = MixHash64(static_cast<uint64_t>(
        KeyAt(RowRef(p, &schema), opts_.key_col)));
    return static_cast<uint32_t>(h % world);
  };
  if (workers > 1 && world <= 256) {
    // Two-phase count→write-combining scatter over static worker ranges:
    // the routing hash is computed once into a pid array, per-(worker,
    // destination) offsets replay the input order, and every worker
    // scatters through the shared WC kernel into its exclusive region.
    wire->ResizeRowsUninitialized(n);
    const std::vector<size_t> bounds = SplitRows(n, workers);
    std::vector<uint8_t> pids(n);
    std::vector<std::vector<size_t>> worker_counts(
        workers, std::vector<size_t>(world, 0));
    MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
      const uint8_t* p = input->data() + bounds[w] * stride;
      for (size_t i = bounds[w]; i < bounds[w + 1]; ++i, p += stride) {
        const uint32_t d = dest_of(p);
        pids[i] = static_cast<uint8_t>(d);
        ++worker_counts[w][d];
      }
      return Status::OK();
    }));
    for (int r = 0; r < world; ++r) {
      size_t total = 0;
      for (int w = 0; w < workers; ++w) total += worker_counts[w][r];
      dest_base[r + 1] = dest_base[r] + total;
    }
    std::vector<std::vector<size_t>> offsets(
        workers, std::vector<size_t>(world, 0));
    for (int r = 0; r < world; ++r) {
      size_t off = dest_base[r];
      for (int w = 0; w < workers; ++w) {
        offsets[w][r] = off;
        off += worker_counts[w][r];
      }
    }
    MODULARIS_RETURN_NOT_OK(ParallelFor(ctx_, workers, [&](int w) -> Status {
      ScatterSpanByPidWc(input->data() + bounds[w] * stride,
                         bounds[w + 1] - bounds[w], stride,
                         pids.data() + bounds[w], world, bounds[w],
                         wire->mutable_row(0), /*dst_idx=*/nullptr,
                         &offsets[w]);
      return Status::OK();
    }));
  } else if (n > 0) {
    if (workers > 1) {
      // pids are staged as uint8_t, so a >256-rank world routes serially.
      NoteSerialFallback(ctx_, "TcpExchange");
    }
    wire->ResizeRowsUninitialized(n);
    std::vector<size_t> counts(world, 0);
    const uint8_t* p = input->data();
    for (size_t i = 0; i < n; ++i, p += stride) ++counts[dest_of(p)];
    for (int r = 0; r < world; ++r) dest_base[r + 1] = dest_base[r] + counts[r];
    std::vector<size_t> cursor(dest_base.begin(), dest_base.end() - 1);
    p = input->data();
    for (size_t i = 0; i < n; ++i, p += stride) {
      std::memcpy(wire->mutable_row(cursor[dest_of(p)]++), p, stride);
    }
  }

  // Two-sided push of packed RowVector segments: send each peer its
  // contiguous slice of the wire buffer, then collect world-1 messages
  // addressed to us. Sends block for the modelled wire time — TCP gives
  // none of the RDMA overlap.
  mine_ = RowVector::Make(schema);
  if (dest_base[me + 1] > dest_base[me]) {
    mine_->AppendRawBatch(wire->data() + dest_base[me] * stride,
                          dest_base[me + 1] - dest_base[me]);
  }
  for (int peer = 0; peer < world; ++peer) {
    if (peer == me) continue;
    const size_t rows = dest_base[peer + 1] - dest_base[peer];
    // The payload is rebuilt from the wire buffer inside the retried call
    // (Send consumes it by value); an injected failure fires before the
    // enqueue, so the retry delivers exactly one copy.
    MODULARIS_RETURN_NOT_OK(RetryCall(
        ctx_->options.retry, ctx_->stats, "fabric.send",
        [&] {
          std::vector<uint8_t> payload(rows * stride);
          if (rows > 0) {
            std::memcpy(payload.data(),
                        wire->data() + dest_base[peer] * stride,
                        rows * stride);
          }
          return comm->fabric().Send(me, peer, std::move(payload));
        },
        ctx_->cancel));
  }
  for (int peer = 0; peer < world; ++peer) {
    if (peer == me) continue;
    std::vector<uint8_t> payload;
    MODULARIS_RETURN_NOT_OK(RetryCall(
        ctx_->options.retry, ctx_->stats, "fabric.recv",
        [&] { return comm->fabric().Recv(me, peer, &payload, ctx_->cancel); },
        ctx_->cancel));
    mine_->AppendRawBatch(payload.data(), payload.size() / stride);
  }
  timer.Stop();
  exchanged_ = true;
  return Status::OK();
}

bool TcpExchange::Next(Tuple* out) {
  if (done_) return false;
  if (!exchanged_) {
    Status st = DoExchange();
    if (!st.ok()) return Fail(std::move(st));
  }
  done_ = true;
  const int64_t pid = ctx_->comm->rank();
  out->clear();
  out->push_back(Item(pid));
  out->push_back(Item(mine_));
  return true;
}

bool TcpExchange::NextBatch(RowBatch* out) {
  out->Clear();
  if (done_) return false;
  if (!exchanged_) {
    Status st = DoExchange();
    if (!st.ok()) return Fail(std::move(st));
  }
  done_ = true;
  if (mine_->empty()) return false;
  out->Borrow(mine_);
  out->MarkDurable();  // kept alive and unmutated for the whole Open cycle
  return true;
}

}  // namespace modularis
