#include "mpi/tcp_exchange.h"

#include "suboperators/partition_ops.h"

namespace modularis {

Status TcpExchange::DoExchange() {
  mpi::Communicator* comm = ctx_->comm;
  if (comm == nullptr) {
    return Status::Internal("TcpExchange requires a communicator");
  }
  const int world = comm->size();
  const int me = comm->rank();

  // Gather input and bucket it per destination rank.
  Schema schema = KeyValueSchema();
  bool have_schema = false;
  std::vector<RowVectorPtr> buckets;
  auto ensure_buckets = [&](const Schema& s) {
    if (have_schema) return;
    schema = s;
    have_schema = true;
    for (int r = 0; r < world; ++r) {
      buckets.push_back(RowVector::Make(schema));
    }
  };
  auto route = [&](const RowRef& row) {
    uint64_t h = MixHash64(static_cast<uint64_t>(KeyAt(row, opts_.key_col)));
    buckets[h % world]->AppendRaw(row.data());
  };

  if (ctx_->options.enable_vectorized && child(0)->ProducesRecordStream()) {
    // Batched drain (the MpiExchange packed-row pattern): whole batches of
    // packed rows are routed without a virtual Next() call per record.
    RowBatch batch;
    while (child(0)->NextBatch(&batch)) {
      if (batch.empty()) continue;
      ensure_buckets(batch.schema());
      const uint8_t* p = batch.data();
      const uint32_t stride = batch.row_size();
      const size_t n = batch.size();
      for (size_t i = 0; i < n; ++i, p += stride) {
        route(RowRef(p, &batch.schema()));
      }
    }
    MODULARIS_RETURN_NOT_OK(child(0)->status());
  } else {
    Tuple t;
    while (child(0)->Next(&t)) {
      const Item& item = t[0];
      if (item.is_collection()) {
        ensure_buckets(item.collection()->schema());
        const RowVector& rows = *item.collection();
        for (size_t i = 0; i < rows.size(); ++i) route(rows.row(i));
      } else if (item.is_row()) {
        ensure_buckets(item.row().schema());
        route(item.row());
      } else {
        return Status::InvalidArgument(
            "TcpExchange expects rows or collections, got " +
            item.ToString());
      }
    }
    MODULARIS_RETURN_NOT_OK(child(0)->status());
  }
  if (!have_schema) ensure_buckets(KeyValueSchema());

  ScopedTimer timer(ctx_->stats, opts_.timer_key);
  mine_ = RowVector::Make(schema);
  mine_->AppendAll(*buckets[me]);
  // Two-sided push: send each peer its bucket, then collect world-1
  // messages addressed to us. Sends block for the modelled wire time —
  // TCP gives none of the RDMA overlap.
  for (int peer = 0; peer < world; ++peer) {
    if (peer == me) continue;
    const RowVector& bucket = *buckets[peer];
    std::vector<uint8_t> payload(bucket.data(),
                                 bucket.data() + bucket.byte_size());
    comm->fabric().Send(me, peer, std::move(payload));
  }
  for (int peer = 0; peer < world; ++peer) {
    if (peer == me) continue;
    std::vector<uint8_t> payload = comm->fabric().Recv(me, peer);
    mine_->AppendRawBatch(payload.data(), payload.size() / schema.row_size());
  }
  timer.Stop();
  exchanged_ = true;
  return Status::OK();
}

bool TcpExchange::Next(Tuple* out) {
  if (done_) return false;
  if (!exchanged_) {
    Status st = DoExchange();
    if (!st.ok()) return Fail(std::move(st));
  }
  done_ = true;
  const int64_t pid = ctx_->comm->rank();
  out->clear();
  out->push_back(Item(pid));
  out->push_back(Item(mine_));
  return true;
}

bool TcpExchange::NextBatch(RowBatch* out) {
  out->Clear();
  if (done_) return false;
  if (!exchanged_) {
    Status st = DoExchange();
    if (!st.ok()) return Fail(std::move(st));
  }
  done_ = true;
  if (mine_->empty()) return false;
  out->Borrow(mine_);
  out->MarkDurable();  // kept alive and unmutated for the whole Open cycle
  return true;
}

}  // namespace modularis
