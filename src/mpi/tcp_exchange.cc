#include "mpi/tcp_exchange.h"

#include "suboperators/partition_ops.h"

namespace modularis {

bool TcpExchange::Next(Tuple* out) {
  if (done_) return false;
  mpi::Communicator* comm = ctx_->comm;
  if (comm == nullptr) {
    return Fail(Status::Internal("TcpExchange requires a communicator"));
  }
  const int world = comm->size();
  const int me = comm->rank();

  // Gather input and bucket it per destination rank.
  Schema schema = KeyValueSchema();
  bool have_schema = false;
  std::vector<RowVectorPtr> buckets;
  auto ensure_buckets = [&](const Schema& s) {
    if (have_schema) return;
    schema = s;
    have_schema = true;
    for (int r = 0; r < world; ++r) {
      buckets.push_back(RowVector::Make(schema));
    }
  };
  auto route = [&](const RowRef& row) {
    uint64_t h = MixHash64(static_cast<uint64_t>(KeyAt(row, opts_.key_col)));
    buckets[h % world]->AppendRaw(row.data());
  };

  {
    Tuple t;
    while (child(0)->Next(&t)) {
      const Item& item = t[0];
      if (item.is_collection()) {
        ensure_buckets(item.collection()->schema());
        const RowVector& rows = *item.collection();
        for (size_t i = 0; i < rows.size(); ++i) route(rows.row(i));
      } else if (item.is_row()) {
        ensure_buckets(item.row().schema());
        route(item.row());
      } else {
        return Fail(Status::InvalidArgument(
            "TcpExchange expects rows or collections, got " +
            item.ToString()));
      }
    }
    if (!child(0)->status().ok()) return Fail(child(0)->status());
    if (!have_schema) ensure_buckets(KeyValueSchema());
  }

  ScopedTimer timer(ctx_->stats, opts_.timer_key);
  RowVectorPtr mine = RowVector::Make(schema);
  mine->AppendAll(*buckets[me]);
  // Two-sided push: send each peer its bucket, then collect world-1
  // messages addressed to us. Sends block for the modelled wire time —
  // TCP gives none of the RDMA overlap.
  for (int peer = 0; peer < world; ++peer) {
    if (peer == me) continue;
    const RowVector& bucket = *buckets[peer];
    std::vector<uint8_t> payload(bucket.data(),
                                 bucket.data() + bucket.byte_size());
    comm->fabric().Send(me, peer, std::move(payload));
  }
  for (int peer = 0; peer < world; ++peer) {
    if (peer == me) continue;
    std::vector<uint8_t> payload = comm->fabric().Recv(me, peer);
    mine->AppendRawBatch(payload.data(), payload.size() / schema.row_size());
  }
  timer.Stop();

  done_ = true;
  out->clear();
  out->push_back(Item(static_cast<int64_t>(me)));
  out->push_back(Item(std::move(mine)));
  return true;
}

}  // namespace modularis
