#ifndef MODULARIS_MPI_TCP_EXCHANGE_H_
#define MODULARIS_MPI_TCP_EXCHANGE_H_

#include <string>

#include "core/sub_operator.h"
#include "mpi/communicator.h"
#include "suboperators/radix.h"

/// \file tcp_exchange.h
/// The TCP-based exchange the paper names as the natural next backend
/// (§4.4: "we could extend the TPC-H implementation to use an exchange
/// operator based on TCP. The addition of more backends only requires
/// changing the executor and the operators that comprise the network
/// exchange phase"). Unlike MpiExchange it needs no histograms and no RMA
/// windows: records are hash-partitioned into one bucket per peer and
/// pushed with two-sided sends; every rank then owns exactly one
/// partition. Used by the Presto-profile baseline, whose engines exchange
/// over commodity TCP.

namespace modularis {

/// Two-sided hash exchange. Consumes records/collections; emits a single
/// ⟨pid = rank, partitionData⟩ tuple holding everything routed here.
class TcpExchange : public SubOperator {
 public:
  struct Options {
    int key_col = 0;
    std::string timer_key = "phase.network_partition";
  };

  TcpExchange(SubOpPtr data, Options options)
      : SubOperator("TcpExchange"), opts_(std::move(options)) {
    AddChild(std::move(data));
  }

  Status Open(ExecContext* ctx) override {
    done_ = false;
    return SubOperator::Open(ctx);
  }

  bool Next(Tuple* out) override;

 private:
  Options opts_;
  bool done_ = false;
};

}  // namespace modularis

#endif  // MODULARIS_MPI_TCP_EXCHANGE_H_
