#ifndef MODULARIS_MPI_TCP_EXCHANGE_H_
#define MODULARIS_MPI_TCP_EXCHANGE_H_

#include <string>

#include "core/sub_operator.h"
#include "mpi/communicator.h"
#include "suboperators/radix.h"

/// \file tcp_exchange.h
/// The TCP-based exchange the paper names as the natural next backend
/// (§4.4: "we could extend the TPC-H implementation to use an exchange
/// operator based on TCP. The addition of more backends only requires
/// changing the executor and the operators that comprise the network
/// exchange phase"). Unlike MpiExchange it needs no histograms and no RMA
/// windows: records are hash-partitioned into one bucket per peer and
/// pushed with two-sided sends; every rank then owns exactly one
/// partition. Used by the Presto-profile baseline, whose engines exchange
/// over commodity TCP.

namespace modularis {

/// Two-sided hash exchange. Consumes records/collections; emits a single
/// ⟨pid = rank, partitionData⟩ tuple holding everything routed here.
/// Routing runs morsel-parallel over static worker ranges (two-phase
/// count→write-combining scatter into one destination-ordered wire
/// buffer, docs/DESIGN-exchange.md), and each peer receives its packed
/// RowVector segment in one message — rows of a destination replay input
/// order, so N-thread routing is byte-equal to serial.
class TcpExchange : public SubOperator {
 public:
  struct Options {
    int key_col = 0;
    std::string timer_key = "phase.network_partition";
  };

  TcpExchange(SubOpPtr data, Options options)
      : SubOperator("TcpExchange"), opts_(std::move(options)) {
    AddChild(std::move(data));
  }

  Status Open(ExecContext* ctx) override {
    exchanged_ = false;
    done_ = false;
    mine_.reset();
    return SubOperator::Open(ctx);
  }

  Status Close() override {
    mine_.reset();  // don't retain the partition past the Open cycle
    return SubOperator::Close();
  }

  bool Next(Tuple* out) override;

  /// Record projection of the stream (docs/DESIGN-vectorized.md): the
  /// partition this rank owns as one durable borrowed batch (the pid atom
  /// — always this rank — is only observable through Next()). Next() and
  /// NextBatch() share the stream position: the partition is delivered
  /// exactly once per Open, whichever protocol pulls it first. The input
  /// side drains record streams through the batch protocol, so routing
  /// runs over packed rows instead of one virtual Next() per record.
  bool NextBatch(RowBatch* out) override;

 private:
  /// Buckets the input per destination rank, pushes the peers' buckets
  /// over the fabric and collects this rank's partition into mine_.
  Status DoExchange();

  Options opts_;
  bool exchanged_ = false;
  bool done_ = false;  // the single output unit was emitted (either form)
  RowVectorPtr mine_;
};

}  // namespace modularis

#endif  // MODULARIS_MPI_TCP_EXCHANGE_H_
