#include "mpi/communicator.h"

#include <thread>

namespace modularis::mpi {

void World::Poison(const Status& cause) {
  {
    std::lock_guard<std::mutex> lock(poison_mu_);
    if (poisoned_.load(std::memory_order_relaxed)) return;  // first wins
    poison_cause_ = cause;
    poisoned_.store(true, std::memory_order_release);
  }
  // Empty critical section on the slot lock before notifying: a rank
  // between its predicate check and its wait would otherwise miss the
  // wakeup forever (the classic lost-notify race).
  { std::lock_guard<std::mutex> lock(slot_.mu); }
  slot_.cv.notify_all();
  // Then wake ranks blocked in the fabric (two-sided Recv waits live in
  // per-mailbox cvs).
  fabric_.Poison(cause);
}

Status World::poison_cause() const {
  std::lock_guard<std::mutex> lock(poison_mu_);
  if (!poisoned_.load(std::memory_order_relaxed)) return Status::OK();
  return poison_cause_;
}

namespace {

Status PoisonedStatus(const Status& cause) {
  return Status::Aborted("peer rank failed: " + cause.ToString());
}

}  // namespace

Status Communicator::Rendezvous(
    const std::function<void(World::CollectiveSlot&)>& on_arrive,
    const std::function<void(World::CollectiveSlot&)>& on_complete) {
  World::CollectiveSlot& slot = world_->slot_;
  std::unique_lock<std::mutex> lock(slot.mu);
  if (world_->poisoned_.load(std::memory_order_relaxed)) {
    return PoisonedStatus(world_->poison_cause_);
  }
  uint64_t my_generation = slot.generation;
  if (on_arrive) on_arrive(slot);
  if (++slot.arrived == world_->size()) {
    if (on_complete) on_complete(slot);
    slot.arrived = 0;
    ++slot.generation;
    slot.cv.notify_all();
  } else {
    // A poisoned world never bumps the generation (the failed rank is
    // gone), so the predicate must also wake on poisoning.
    slot.cv.wait(lock, [&] {
      return slot.generation != my_generation ||
             world_->poisoned_.load(std::memory_order_relaxed);
    });
    if (slot.generation == my_generation) {
      return PoisonedStatus(world_->poison_cause_);
    }
  }
  return Status::OK();
}

Status Communicator::Barrier() {
  return Rendezvous(nullptr, nullptr);
}

Status Communicator::AllreduceSum(std::vector<int64_t>* data) {
  MODULARIS_RETURN_NOT_OK(Rendezvous(
      [&](World::CollectiveSlot& slot) {
        if (slot.reduce_acc.size() != data->size()) {
          slot.reduce_acc.assign(data->size(), 0);
        }
        for (size_t i = 0; i < data->size(); ++i) {
          slot.reduce_acc[i] += (*data)[i];
        }
      },
      nullptr));
  // After the rendezvous every rank copies the reduced vector out. The
  // accumulator is reset by the first arriver of the *next* allreduce, so
  // a second rendezvous fences the read before reuse.
  {
    std::unique_lock<std::mutex> lock(world_->slot_.mu);
    *data = world_->slot_.reduce_acc;
  }
  return Rendezvous(nullptr, [](World::CollectiveSlot& slot) {
    slot.reduce_acc.clear();
  });
}

Status Communicator::AllgatherI64(const std::vector<int64_t>& local,
                                  std::vector<std::vector<int64_t>>* out) {
  MODULARIS_RETURN_NOT_OK(Rendezvous(
      [&](World::CollectiveSlot& slot) {
        if (slot.gather_parts.size() != static_cast<size_t>(size())) {
          slot.gather_parts.assign(size(), {});
        }
        slot.gather_parts[rank_] = local;
      },
      nullptr));
  {
    std::unique_lock<std::mutex> lock(world_->slot_.mu);
    *out = world_->slot_.gather_parts;
  }
  return Rendezvous(nullptr, [](World::CollectiveSlot& slot) {
    slot.gather_parts.clear();
  });
}

Status Communicator::AllgatherBytes(const std::vector<uint8_t>& local,
                                    std::vector<std::vector<uint8_t>>* out) {
  // Charge the fabric for sending this payload to every peer, then wait
  // out the modelled serialization before publishing. An injected Flush
  // failure is transient — retry it here so a broadcast under fault
  // injection stays byte-identical to the fault-free run.
  for (int peer = 0; peer < size(); ++peer) {
    if (peer == rank_) continue;
    world_->fabric().Charge(rank_, local.size());
  }
  MODULARIS_RETURN_NOT_OK(RetryCall(RetryPolicy{}, nullptr, "fabric.flush",
                                    [&] { return WinFlush(); }));
  MODULARIS_RETURN_NOT_OK(Rendezvous(
      [&](World::CollectiveSlot& slot) {
        if (slot.gather_bytes.size() != static_cast<size_t>(size())) {
          slot.gather_bytes.assign(size(), {});
        }
        slot.gather_bytes[rank_] = local;
      },
      nullptr));
  {
    std::unique_lock<std::mutex> lock(world_->slot_.mu);
    *out = world_->slot_.gather_bytes;
  }
  return Rendezvous(nullptr, [](World::CollectiveSlot& slot) {
    slot.gather_bytes.clear();
  });
}

Result<net::WindowId> Communicator::WinAllocate(size_t local_bytes) {
  net::WindowId id = world_->fabric().RegisterWindow(rank_, local_bytes);
  // Window ids align across ranks because every rank registers in the
  // same collective order; the barrier publishes the registrations.
  MODULARIS_RETURN_NOT_OK(Barrier());
  return id;
}

Status Communicator::WinPut(int target, net::WindowId window, size_t offset,
                            const void* data, size_t len) {
  return world_->fabric().Put(rank_, target, window, offset, data, len);
}

Status Communicator::WinFlush() {
  return world_->fabric().Flush(rank_);
}

uint8_t* Communicator::WinData(net::WindowId window) {
  return world_->fabric().WindowData(rank_, window);
}

size_t Communicator::WinSize(net::WindowId window) {
  return world_->fabric().WindowSize(rank_, window);
}

Status Communicator::WinFree(net::WindowId window) {
  // No rank may free while others still read; a poisoned barrier means
  // peers may never arrive — skip the free (the World owns the memory and
  // reclaims it on teardown) instead of racing their window reads.
  MODULARIS_RETURN_NOT_OK(Barrier());
  world_->fabric().FreeWindow(rank_, window);
  return Status::OK();
}

Status MpiRuntime::Run(int world_size,
                       const net::FabricOptions& fabric_options,
                       const RankFn& fn, MpiRunReport* report) {
  World world(world_size, fabric_options);
  std::vector<Status> statuses(world_size, Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(world_size);
  for (int r = 0; r < world_size; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(r, &world);
      Status st = fn(comm);
      if (!st.ok()) {
        // Cross-rank error propagation: wake peers blocked in collectives
        // or Recvs so the whole query aborts instead of deadlocking.
        world.Poison(st);
      }
      statuses[r] = std::move(st);
    });
  }
  for (auto& t : threads) t.join();
  if (report != nullptr) {
    report->rank_status = statuses;
    world.fabric().fault_injector().ExportCounters(&report->stats);
  }
  if (world.poisoned()) {
    // The first failing rank's original status, not a peer's kAborted
    // echo of it.
    return world.poison_cause();
  }
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace modularis::mpi
