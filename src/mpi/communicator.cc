#include "mpi/communicator.h"

#include <thread>

namespace modularis::mpi {

void Communicator::Rendezvous(
    const std::function<void(World::CollectiveSlot&)>& on_arrive,
    const std::function<void(World::CollectiveSlot&)>& on_complete) {
  World::CollectiveSlot& slot = world_->slot_;
  std::unique_lock<std::mutex> lock(slot.mu);
  uint64_t my_generation = slot.generation;
  if (on_arrive) on_arrive(slot);
  if (++slot.arrived == world_->size()) {
    if (on_complete) on_complete(slot);
    slot.arrived = 0;
    ++slot.generation;
    slot.cv.notify_all();
  } else {
    slot.cv.wait(lock, [&] { return slot.generation != my_generation; });
  }
}

void Communicator::Barrier() {
  Rendezvous(nullptr, nullptr);
}

void Communicator::AllreduceSum(std::vector<int64_t>* data) {
  Rendezvous(
      [&](World::CollectiveSlot& slot) {
        if (slot.reduce_acc.size() != data->size()) {
          slot.reduce_acc.assign(data->size(), 0);
        }
        for (size_t i = 0; i < data->size(); ++i) {
          slot.reduce_acc[i] += (*data)[i];
        }
      },
      nullptr);
  // After the rendezvous every rank copies the reduced vector out. The
  // accumulator is reset by the first arriver of the *next* allreduce, so
  // a second rendezvous fences the read before reuse.
  {
    std::unique_lock<std::mutex> lock(world_->slot_.mu);
    *data = world_->slot_.reduce_acc;
  }
  Rendezvous(nullptr, [](World::CollectiveSlot& slot) {
    slot.reduce_acc.clear();
  });
}

std::vector<std::vector<int64_t>> Communicator::AllgatherI64(
    const std::vector<int64_t>& local) {
  Rendezvous(
      [&](World::CollectiveSlot& slot) {
        if (slot.gather_parts.size() != static_cast<size_t>(size())) {
          slot.gather_parts.assign(size(), {});
        }
        slot.gather_parts[rank_] = local;
      },
      nullptr);
  std::vector<std::vector<int64_t>> result;
  {
    std::unique_lock<std::mutex> lock(world_->slot_.mu);
    result = world_->slot_.gather_parts;
  }
  Rendezvous(nullptr, [](World::CollectiveSlot& slot) {
    slot.gather_parts.clear();
  });
  return result;
}

std::vector<std::vector<uint8_t>> Communicator::AllgatherBytes(
    const std::vector<uint8_t>& local) {
  // Charge the fabric for sending this payload to every peer, then wait
  // out the modelled serialization before publishing.
  for (int peer = 0; peer < size(); ++peer) {
    if (peer == rank_) continue;
    world_->fabric().Charge(rank_, local.size());
  }
  world_->fabric().Flush(rank_);
  Rendezvous(
      [&](World::CollectiveSlot& slot) {
        if (slot.gather_bytes.size() != static_cast<size_t>(size())) {
          slot.gather_bytes.assign(size(), {});
        }
        slot.gather_bytes[rank_] = local;
      },
      nullptr);
  std::vector<std::vector<uint8_t>> result;
  {
    std::unique_lock<std::mutex> lock(world_->slot_.mu);
    result = world_->slot_.gather_bytes;
  }
  Rendezvous(nullptr, [](World::CollectiveSlot& slot) {
    slot.gather_bytes.clear();
  });
  return result;
}

net::WindowId Communicator::WinAllocate(size_t local_bytes) {
  net::WindowId id = world_->fabric().RegisterWindow(rank_, local_bytes);
  // Window ids align across ranks because every rank registers in the
  // same collective order; the barrier publishes the registrations.
  Barrier();
  return id;
}

Status Communicator::WinPut(int target, net::WindowId window, size_t offset,
                            const void* data, size_t len) {
  return world_->fabric().Put(rank_, target, window, offset, data, len);
}

void Communicator::WinFlush() {
  world_->fabric().Flush(rank_);
}

uint8_t* Communicator::WinData(net::WindowId window) {
  return world_->fabric().WindowData(rank_, window);
}

size_t Communicator::WinSize(net::WindowId window) {
  return world_->fabric().WindowSize(rank_, window);
}

void Communicator::WinFree(net::WindowId window) {
  Barrier();  // no rank may free while others still read
  world_->fabric().FreeWindow(rank_, window);
}

Status MpiRuntime::Run(int world_size,
                       const net::FabricOptions& fabric_options,
                       const RankFn& fn) {
  World world(world_size, fabric_options);
  std::vector<Status> statuses(world_size, Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(world_size);
  for (int r = 0; r < world_size; ++r) {
    threads.emplace_back([&, r] {
      Communicator comm(r, &world);
      statuses[r] = fn(comm);
    });
  }
  for (auto& t : threads) t.join();
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace modularis::mpi
