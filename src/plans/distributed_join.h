#ifndef MODULARIS_PLANS_DISTRIBUTED_JOIN_H_
#define MODULARIS_PLANS_DISTRIBUTED_JOIN_H_

#include <vector>

#include "core/stats.h"
#include "mpi/mpi_ops.h"
#include "plans/common.h"
#include "suboperators/join_ops.h"

/// \file distributed_join.h
/// The paper's flagship case study (§4.1): the RDMA-aware distributed
/// radix hash join of Barthels et al. [14], expressed entirely as a plan
/// of reusable sub-operators (Fig. 3):
///
///   per side:  LocalHistogram → MpiHistogram → MpiExchange
///   then:      Zip → NestedMap( per network-partition pair:
///                LocalHistogram/LocalPartition each side →
///                CartesianProduct (re-attach pid) →
///                Zip → NestedMap( per local-partition pair:
///                  BuildProbe → ParametrizedMap (recover key bits) →
///                  MaterializeRowVector ) → RowScan → Materialize )
///              → RowScan → MaterializeRowVector

namespace modularis::plans {

/// Configuration of the distributed join benchmark workloads (§5.2).
struct DistJoinOptions {
  int world_size = 4;
  net::FabricOptions fabric;
  ExecOptions exec;
  /// Apply the §4.1.2 16→8-byte network compression pass.
  bool compress = true;
  JoinType join_type = JoinType::kInner;
};

/// Builds rank `rank`'s operator tree for the Fig. 3 join plan. The rank's
/// parameter tuple must be ⟨inner collection, outer collection⟩ (kv16).
SubOpPtr BuildJoinRankPlan(const DistJoinOptions& opts);

/// Runs the full distributed join: partitions `inner`/`outer` are the
/// per-rank base-table fragments (size == world_size). Returns the
/// materialized join result ⟨key, value, value_r⟩ (inner join) or the
/// surviving probe records (semi/anti). Phase timings land in `stats`.
Result<RowVectorPtr> RunDistributedJoin(
    const std::vector<RowVectorPtr>& inner,
    const std::vector<RowVectorPtr>& outer, const DistJoinOptions& opts,
    StatsRegistry* stats);

}  // namespace modularis::plans

#endif  // MODULARIS_PLANS_DISTRIBUTED_JOIN_H_
