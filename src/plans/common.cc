#include "plans/common.h"

namespace modularis::plans {

Result<RowVectorPtr> DrainCollections(SubOperator* root, ExecContext* ctx,
                                      const Schema& schema) {
  MODULARIS_RETURN_NOT_OK(root->Open(ctx));
  RowVectorPtr out = RowVector::Make(schema);
  Tuple t;
  while (root->Next(&t)) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].is_collection()) {
        out->AppendAll(*t[i].collection());
      } else if (t[i].is_row()) {
        out->AppendRaw(t[i].row().data());
      }
    }
  }
  MODULARIS_RETURN_NOT_OK(root->status());
  MODULARIS_RETURN_NOT_OK(root->Close());
  return out;
}

}  // namespace modularis::plans
