#include "plans/common.h"

#include "mpi/mpi_ops.h"
#include "mpi/tcp_exchange.h"
#include "serverless/serverless_ops.h"
#include "suboperators/agg_ops.h"
#include "suboperators/partition_ops.h"

namespace modularis::plans {

std::string AddExchangePipelines(PipelinePlan* plan, const std::string& base,
                                 const std::function<SubOpPtr()>& src,
                                 const ExchangeConfig& cfg) {
  switch (cfg.transport) {
    case ExchangeConfig::Transport::kTcp: {
      TcpExchange::Options topts;
      topts.key_col = cfg.key_col;
      plan->Add(base + "_tcp",
                std::make_unique<TcpExchange>(MaybeScan(src(), cfg.fused),
                                                   topts));
      return base + "_tcp";
    }
    case ExchangeConfig::Transport::kS3: {
      plan->Add(base + "_part",
                std::make_unique<GroupByPid>(std::make_unique<PartitionOp>(
                    MaybeScan(src(), cfg.fused), cfg.spec, cfg.key_col)));
      S3Exchange::Options xopts;
      xopts.prefix = cfg.prefix;
      xopts.write_combining = cfg.write_combining;
      xopts.retry = cfg.retry;
      plan->Add(base + "_s3x", std::make_unique<S3Exchange>(
                                   plan->MakeRef(base + "_part"), xopts));
      return base + "_s3x";
    }
    case ExchangeConfig::Transport::kMpi:
      break;
  }
  plan->Add(base + "_lh",
            std::make_unique<LocalHistogram>(MaybeScan(src(), cfg.fused),
                                             cfg.spec, cfg.key_col));
  plan->Add(base + "_mh",
            std::make_unique<MpiHistogram>(plan->MakeRef(base + "_lh")));
  MpiExchange::Options xopts;
  xopts.spec = cfg.spec;
  xopts.key_col = cfg.key_col;
  xopts.compress = cfg.compress;
  xopts.domain_bits = cfg.domain_bits;
  xopts.buffer_bytes = cfg.buffer_bytes;
  plan->Add(base + "_mx", std::make_unique<MpiExchange>(
                              MaybeScan(src(), cfg.fused),
                              plan->MakeRef(base + "_lh"),
                              plan->MakeRef(base + "_mh"), xopts));
  return base + "_mx";
}

Result<RowVectorPtr> DrainCollections(SubOperator* root, ExecContext* ctx,
                                      const Schema& schema) {
  MODULARIS_RETURN_NOT_OK(root->Open(ctx));
  RowVectorPtr out = RowVector::Make(schema);
  Tuple t;
  while (root->Next(&t)) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i].is_collection()) {
        out->AppendAll(*t[i].collection());
      } else if (t[i].is_row()) {
        out->AppendRaw(t[i].row().data());
      }
    }
  }
  MODULARIS_RETURN_NOT_OK(root->status());
  MODULARIS_RETURN_NOT_OK(root->Close());
  return out;
}

}  // namespace modularis::plans
