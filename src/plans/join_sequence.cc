#include "plans/join_sequence.h"

#include "suboperators/agg_ops.h"
#include "suboperators/join_ops.h"
#include "suboperators/partition_ops.h"

namespace modularis::plans {

namespace {

/// Stage output schema S_j = ⟨key, v0, ..., vj⟩ (j joins performed).
Schema StageSchema(int j) {
  std::vector<Field> fields;
  fields.push_back(Field::I64("key"));
  for (int i = 0; i <= j; ++i) {
    fields.push_back(Field::I64("v" + std::to_string(i)));
  }
  return Schema(std::move(fields));
}

/// Prune map after BuildProbe(build = R_j kv16, probe = S_{j-1} stream):
/// BP output = ⟨key, vj⟩ ⊕ ⟨key_p, v0..v_{j-1}⟩ → S_j = ⟨key, v0..vj⟩.
std::vector<MapOutput> PruneOutputs(int j) {
  std::vector<MapOutput> outs;
  outs.push_back(MapOutput::Pass(0));                   // key
  for (int i = 0; i < j; ++i) {
    outs.push_back(MapOutput::Pass(3 + i));             // v0..v_{j-1}
  }
  outs.push_back(MapOutput::Pass(1));                   // vj
  return outs;
}

/// Per network-partition nested plan of one *naive* stage: local-partition
/// both sides, then build-probe per local partition pair and prune.
/// Parameter tuple: ⟨pid_L, data_L, pid_R, data_R⟩ where L = S_{j-1}
/// (probe side) and R = relation j (build side).
SubOpPtr NaiveStageLocalPlan(int j, const JoinSequenceOptions& opts) {
  const bool fused = opts.exec.enable_fusion;
  RadixSpec local_spec;
  local_spec.bits = opts.exec.local_radix_bits;
  local_spec.shift = opts.exec.network_radix_bits;
  const Schema left_schema = StageSchema(j - 1);   // probe
  const Schema right_schema = KeyValueSchema();    // build
  const Schema out_schema = StageSchema(j);

  auto plan = std::make_unique<PipelinePlan>();
  for (int side = 0; side < 2; ++side) {
    std::string suffix = side == 0 ? "_l" : "_r";
    int data_item = side * 2 + 1;
    plan->Add("lh" + suffix,
              std::make_unique<LocalHistogram>(
                  MaybeScan(ParamItem(data_item), fused), local_spec, 0,
                  "phase.local_partition"));
    plan->Add("lp" + suffix,
              std::make_unique<LocalPartition>(
                  MaybeScan(ParamItem(data_item), fused),
                  plan->MakeRef("lh" + suffix), local_spec, 0,
                  "phase.local_partition"));
  }

  // Inner nested plan per local-partition pair:
  // param ⟨lpid_l, data_l, lpid_r, data_r⟩.
  auto inner = [&]() -> SubOpPtr {
    auto build = MaybeScan(ParamItem(3), fused);
    auto probe = MaybeScan(ParamItem(1), fused);
    auto bp = std::make_unique<BuildProbe>(
        std::move(build), std::move(probe), right_schema, left_schema, 0, 0);
    auto pruned = std::make_unique<MapOp>(std::move(bp), out_schema,
                                          PruneOutputs(j));
    return std::make_unique<MaterializeRowVector>(std::move(pruned),
                                                  out_schema);
  }();

  auto zip = std::make_unique<Zip>(plan->MakeRef("lp_l"),
                                   plan->MakeRef("lp_r"));
  auto nested = std::make_unique<NestedMap>(std::move(zip), std::move(inner));
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), fused), out_schema));
  return plan;
}

/// Adds the LH → MH → MX pipeline triple for `src` under `name`, returning
/// the exchange pipeline's name.
std::string AddExchange(PipelinePlan* plan, const std::string& name,
                        std::function<SubOpPtr()> src,
                        const JoinSequenceOptions& opts) {
  const bool fused = opts.exec.enable_fusion;
  RadixSpec net_spec;
  net_spec.bits = opts.exec.network_radix_bits;
  net_spec.shift = 0;
  plan->Add("lh_" + name, std::make_unique<LocalHistogram>(
                              MaybeScan(src(), fused), net_spec, 0));
  plan->Add("mh_" + name,
            std::make_unique<MpiHistogram>(plan->MakeRef("lh_" + name)));
  MpiExchange::Options xopts;
  xopts.spec = net_spec;
  xopts.key_col = 0;
  xopts.compress = false;  // cascades need full keys at every stage
  xopts.buffer_bytes = opts.exec.exchange_buffer_bytes;
  plan->Add("mx_" + name, std::make_unique<MpiExchange>(
                              MaybeScan(src(), fused),
                              plan->MakeRef("lh_" + name),
                              plan->MakeRef("mh_" + name), xopts));
  return "mx_" + name;
}

}  // namespace

Schema SequenceOutSchema(int num_joins) { return StageSchema(num_joins); }

SubOpPtr BuildNaiveSequenceRankPlan(int num_joins,
                                    const JoinSequenceOptions& opts) {
  auto plan = std::make_unique<PipelinePlan>();
  // Stage j joins S_{j-1} (previous output, re-shuffled!) with R_j.
  for (int j = 1; j <= num_joins; ++j) {
    std::string sj = std::to_string(j);
    auto left_src = [&, j]() -> SubOpPtr {
      if (j == 1) return ParamItem(0);
      return plan->MakeRef("out_" + std::to_string(j - 1));
    };
    auto right_src = [&, j]() -> SubOpPtr { return ParamItem(j); };
    std::string mx_l = AddExchange(plan.get(), "l" + sj, left_src, opts);
    std::string mx_r = AddExchange(plan.get(), "r" + sj, right_src, opts);
    auto zip = std::make_unique<Zip>(plan->MakeRef(mx_l),
                                     plan->MakeRef(mx_r));
    auto nested = std::make_unique<NestedMap>(std::move(zip),
                                              NaiveStageLocalPlan(j, opts));
    plan->Add("out_" + sj,
              std::make_unique<MaterializeRowVector>(
                  MaybeScan(std::move(nested), opts.exec.enable_fusion), StageSchema(j)));
  }
  plan->SetOutput(plan->MakeRef("out_" + std::to_string(num_joins)));
  return plan;
}

namespace {

/// Optimized variant: the whole cascade inside one network partition.
/// Parameter tuple: ⟨pid_0, data_0, pid_1, data_1, ..., pid_N, data_N⟩.
SubOpPtr OptimizedLocalPlan(int num_joins, const JoinSequenceOptions& opts) {
  const bool fused = opts.exec.enable_fusion;
  RadixSpec local_spec;
  local_spec.bits = opts.exec.local_radix_bits;
  local_spec.shift = opts.exec.network_radix_bits;

  auto plan = std::make_unique<PipelinePlan>();
  for (int i = 0; i <= num_joins; ++i) {
    std::string si = std::to_string(i);
    int data_item = 2 * i + 1;
    plan->Add("lh_" + si, std::make_unique<LocalHistogram>(
                              MaybeScan(ParamItem(data_item), fused),
                              local_spec, 0, "phase.local_partition"));
    plan->Add("lp_" + si, std::make_unique<LocalPartition>(
                              MaybeScan(ParamItem(data_item), fused),
                              plan->MakeRef("lh_" + si), local_spec, 0,
                              "phase.local_partition"));
  }

  // Inner nested plan per local-partition tuple:
  // param ⟨lpid_0, data_0, ..., lpid_N, data_N⟩ — a chain of BuildProbes,
  // the output of the (j−1)-th streaming into the j-th (paper §4.2).
  auto inner = [&]() -> SubOpPtr {
    SubOpPtr stream = MaybeScan(ParamItem(1), fused);  // S_0 records
    for (int j = 1; j <= num_joins; ++j) {
      auto build = MaybeScan(ParamItem(2 * j + 1), fused);
      auto bp = std::make_unique<BuildProbe>(
          std::move(build), std::move(stream), KeyValueSchema(),
          StageSchema(j - 1), 0, 0);
      stream = std::make_unique<MapOp>(std::move(bp), StageSchema(j),
                                       PruneOutputs(j));
    }
    return std::make_unique<MaterializeRowVector>(std::move(stream),
                                                  StageSchema(num_joins));
  }();

  // Zip all local partition streams into one aligned tuple stream.
  SubOpPtr zipped = plan->MakeRef("lp_0");
  for (int i = 1; i <= num_joins; ++i) {
    zipped = std::make_unique<Zip>(std::move(zipped),
                                   plan->MakeRef("lp_" + std::to_string(i)));
  }
  auto nested = std::make_unique<NestedMap>(std::move(zipped),
                                            std::move(inner));
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), fused), StageSchema(num_joins)));
  return plan;
}

}  // namespace

SubOpPtr BuildOptimizedSequenceRankPlan(int num_joins,
                                        const JoinSequenceOptions& opts) {
  auto plan = std::make_unique<PipelinePlan>();
  // Network-partition all N+1 relations once (Fig. 4, right).
  std::vector<std::string> mx_names;
  for (int i = 0; i <= num_joins; ++i) {
    auto src = [&plan, i]() -> SubOpPtr {
      (void)plan;
      return ParamItem(i);
    };
    mx_names.push_back(
        AddExchange(plan.get(), std::to_string(i), src, opts));
  }
  SubOpPtr zipped = plan->MakeRef(mx_names[0]);
  for (int i = 1; i <= num_joins; ++i) {
    zipped = std::make_unique<Zip>(std::move(zipped),
                                   plan->MakeRef(mx_names[i]));
  }
  auto nested = std::make_unique<NestedMap>(
      std::move(zipped), OptimizedLocalPlan(num_joins, opts));
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), opts.exec.enable_fusion), StageSchema(num_joins)));
  return plan;
}

Result<RowVectorPtr> RunJoinSequence(
    const std::vector<std::vector<RowVectorPtr>>& relations,
    const JoinSequenceOptions& opts, bool optimized, StatsRegistry* stats) {
  if (relations.size() < 2) {
    return Status::InvalidArgument("RunJoinSequence: need >= 2 relations");
  }
  const int num_joins = static_cast<int>(relations.size()) - 1;
  for (const auto& frags : relations) {
    if (static_cast<int>(frags.size()) != opts.world_size) {
      return Status::InvalidArgument(
          "RunJoinSequence: need one fragment per rank per relation");
    }
  }
  MpiExecutor::Config config;
  config.world_size = opts.world_size;
  config.fabric = opts.fabric;
  config.plan_factory = [&opts, num_joins, optimized](int) {
    return optimized ? BuildOptimizedSequenceRankPlan(num_joins, opts)
                     : BuildNaiveSequenceRankPlan(num_joins, opts);
  };
  config.rank_params = [&relations](int rank) {
    Tuple t;
    for (const auto& frags : relations) t.push_back(Item(frags[rank]));
    return t;
  };
  MpiExecutor executor(std::move(config));

  ExecContext driver;
  driver.options = opts.exec;
  driver.stats = stats;
  return DrainCollections(&executor, &driver, SequenceOutSchema(num_joins));
}

}  // namespace modularis::plans
