#include "plans/join_sequence.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "planner/kv_lower.h"

namespace modularis::plans {

namespace {

namespace lp = planner::lp;

/// The Fig. 4 templates as IR. The naive/optimized distinction is purely
/// logical: the naive cascade re-exchanges every intermediate (an
/// Exchange node above each interior stage), the optimized one exchanges
/// each base relation exactly once and consumes intermediates in place.
planner::LogicalPlanPtr SequenceTemplate(int num_joins, bool optimized) {
  auto scan = [](int i) {
    return lp::Exchange(
        lp::Scan(i, "r" + std::to_string(i), KeyValueSchema()), 0);
  };
  planner::LogicalPlanPtr prev = scan(0);
  for (int j = 1; j <= num_joins; ++j) {
    planner::LogicalPlanPtr probe = prev;
    if (!optimized && j >= 2) probe = lp::Exchange(std::move(probe), 0);
    auto join = lp::Join(scan(j), std::move(probe), JoinType::kInner, 0, 0);
    std::vector<MapOutput> prune;
    prune.push_back(MapOutput::Pass(0));  // key
    for (int i = 0; i < j; ++i) prune.push_back(MapOutput::Pass(3 + i));
    prune.push_back(MapOutput::Pass(1));  // vj
    prev = lp::Project(std::move(join), std::move(prune),
                       planner::KvStageSchema(j));
  }
  return prev;
}

SubOpPtr LowerSequence(int num_joins, bool optimized,
                       const JoinSequenceOptions& opts) {
  planner::KvLowerOptions kv;
  kv.compress = false;  // cascades need full keys at every stage
  kv.exec = opts.exec;
  auto lowered =
      planner::LowerKvSequence(*SequenceTemplate(num_joins, optimized), kv);
  if (!lowered.ok()) {
    // Unreachable: the template above is exactly the accepted shape.
    std::fprintf(stderr, "BuildSequenceRankPlan: %s\n",
                 lowered.status().ToString().c_str());
    std::abort();
  }
  return lowered.TakeValue();
}

}  // namespace

Schema SequenceOutSchema(int num_joins) {
  return planner::KvStageSchema(num_joins);
}

SubOpPtr BuildNaiveSequenceRankPlan(int num_joins,
                                    const JoinSequenceOptions& opts) {
  return LowerSequence(num_joins, /*optimized=*/false, opts);
}

SubOpPtr BuildOptimizedSequenceRankPlan(int num_joins,
                                        const JoinSequenceOptions& opts) {
  return LowerSequence(num_joins, /*optimized=*/true, opts);
}

Result<RowVectorPtr> RunJoinSequence(
    const std::vector<std::vector<RowVectorPtr>>& relations,
    const JoinSequenceOptions& opts, bool optimized, StatsRegistry* stats) {
  if (relations.size() < 2) {
    return Status::InvalidArgument("RunJoinSequence: need >= 2 relations");
  }
  const int num_joins = static_cast<int>(relations.size()) - 1;
  for (const auto& frags : relations) {
    if (static_cast<int>(frags.size()) != opts.world_size) {
      return Status::InvalidArgument(
          "RunJoinSequence: need one fragment per rank per relation");
    }
  }
  MpiExecutor::Config config;
  config.world_size = opts.world_size;
  config.fabric = opts.fabric;
  config.plan_factory = [&opts, num_joins, optimized](int) {
    return optimized ? BuildOptimizedSequenceRankPlan(num_joins, opts)
                     : BuildNaiveSequenceRankPlan(num_joins, opts);
  };
  config.rank_params = [&relations](int rank) {
    Tuple t;
    for (const auto& frags : relations) t.push_back(Item(frags[rank]));
    return t;
  };
  MpiExecutor executor(std::move(config));

  ExecContext driver;
  driver.options = opts.exec;
  driver.stats = stats;
  return DrainCollections(&executor, &driver, SequenceOutSchema(num_joins));
}

}  // namespace modularis::plans
