#ifndef MODULARIS_PLANS_COMMON_H_
#define MODULARIS_PLANS_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/exec_context.h"
#include "core/pipeline.h"
#include "core/sub_operator.h"
#include "suboperators/basic_ops.h"
#include "suboperators/radix.h"
#include "suboperators/scan_ops.h"

/// \file common.h
/// Shared helpers for the relational plan builders (distributed join,
/// GROUP BY, join sequences, TPC-H).

namespace modularis::plans {

/// Wraps `src` in a RowScan unless fusion is enabled. This is the plan-
/// time operator-fusion decision (the JIT analog, DESIGN.md §1): with
/// fusion, bulk operators consume whole collections in tight loops; without
/// it, every record crosses a virtual Next() call — the "interpreted"
/// configuration measured by the ablation benchmarks.
inline SubOpPtr MaybeScan(SubOpPtr src, bool fused) {
  if (fused) return src;
  return std::make_unique<RowScan>(std::move(src));
}

/// Projection of the current parameter tuple: the ubiquitous
/// ParameterLookup → Projection prefix of nested plans (Fig. 3).
inline SubOpPtr ParamItem(int index) {
  return std::make_unique<Projection>(std::make_unique<ParameterLookup>(),
                                      std::vector<int>{index});
}

/// Declares a ParametrizedMap's callable thread-safe so the chain stays
/// clonable for the morsel-driven NestedMap workers
/// (docs/DESIGN-parallel.md). The plan builders' callables are stateless
/// lambdas capturing plan constants by value, which qualifies.
inline std::unique_ptr<ParametrizedMap> CloneSafe(
    std::unique_ptr<ParametrizedMap> pm) {
  pm->MarkCloneSafe();
  return pm;
}

/// Output schema of the normalized two-relation join:
/// ⟨key, inner payload, outer payload⟩.
inline Schema JoinOutSchema() {
  return Schema({Field::I64("key"), Field::I64("value"),
                 Field::I64("value_r")});
}

/// Drains a root operator and concatenates all collection items it yields
/// into one RowVector of `schema`.
Result<RowVectorPtr> DrainCollections(SubOperator* root, ExecContext* ctx,
                                      const Schema& schema);

/// Transport-specific exchange prefix (paper §4.1): everything between a
/// materialized per-rank stream and the shuffled ⟨pid, partition⟩ stream
/// that the downstream nested plan consumes. One configuration covers the
/// three platforms:
///   kMpi → LocalHistogram → MpiHistogram → MpiExchange  (one-sided RDMA)
///   kTcp → TcpExchange                                  (socket fabric)
///   kS3  → PartitionOp → GroupByPid → S3Exchange        (object store)
struct ExchangeConfig {
  enum class Transport { kMpi, kTcp, kS3 };
  Transport transport = Transport::kMpi;
  /// Plan-time fusion decision: wraps each source in RowScan when false
  /// (see MaybeScan above).
  bool fused = true;
  /// Partitioning key column of the exchanged stream.
  int key_col = 0;
  /// Radix partitioning spec (kMpi: network fan-out; kS3: one partition
  /// per worker). Passed through verbatim — callers choose the hash
  /// (TPC-H shuffles mix non-uniform keys, the KV workloads keep the
  /// identity hash of the paper's microbenchmarks).
  RadixSpec spec;
  /// kMpi only: §4.1.2 16-to-8-byte wire compression + its key domain.
  bool compress = false;
  int domain_bits = 29;
  size_t buffer_bytes = 1 << 16;
  /// kS3 only.
  std::string prefix;
  bool write_combining = true;
  RetryPolicy retry;
};

/// Appends the exchange pipelines for `cfg` to `plan`, reading the stream
/// produced by `src` (a factory — the MPI prefix consumes the source twice:
/// once for the histogram, once for the partition+write pass). Pipelines
/// are named `base` + "_lh"/"_mh"/"_mx" (kMpi), "_tcp" (kTcp) or
/// "_part"/"_s3x" (kS3); returns the name of the final pipeline, whose
/// result is the ⟨pid, partition⟩ stream of this rank's inbound data.
std::string AddExchangePipelines(PipelinePlan* plan, const std::string& base,
                                 const std::function<SubOpPtr()>& src,
                                 const ExchangeConfig& cfg);

}  // namespace modularis::plans

#endif  // MODULARIS_PLANS_COMMON_H_
