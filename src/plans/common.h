#ifndef MODULARIS_PLANS_COMMON_H_
#define MODULARIS_PLANS_COMMON_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/exec_context.h"
#include "core/pipeline.h"
#include "core/sub_operator.h"
#include "suboperators/basic_ops.h"
#include "suboperators/scan_ops.h"

/// \file common.h
/// Shared helpers for the relational plan builders (distributed join,
/// GROUP BY, join sequences, TPC-H).

namespace modularis::plans {

/// Wraps `src` in a RowScan unless fusion is enabled. This is the plan-
/// time operator-fusion decision (the JIT analog, DESIGN.md §1): with
/// fusion, bulk operators consume whole collections in tight loops; without
/// it, every record crosses a virtual Next() call — the "interpreted"
/// configuration measured by the ablation benchmarks.
inline SubOpPtr MaybeScan(SubOpPtr src, bool fused) {
  if (fused) return src;
  return std::make_unique<RowScan>(std::move(src));
}

/// Projection of the current parameter tuple: the ubiquitous
/// ParameterLookup → Projection prefix of nested plans (Fig. 3).
inline SubOpPtr ParamItem(int index) {
  return std::make_unique<Projection>(std::make_unique<ParameterLookup>(),
                                      std::vector<int>{index});
}

/// Declares a ParametrizedMap's callable thread-safe so the chain stays
/// clonable for the morsel-driven NestedMap workers
/// (docs/DESIGN-parallel.md). The plan builders' callables are stateless
/// lambdas capturing plan constants by value, which qualifies.
inline std::unique_ptr<ParametrizedMap> CloneSafe(
    std::unique_ptr<ParametrizedMap> pm) {
  pm->MarkCloneSafe();
  return pm;
}

/// Output schema of the normalized two-relation join:
/// ⟨key, inner payload, outer payload⟩.
inline Schema JoinOutSchema() {
  return Schema({Field::I64("key"), Field::I64("value"),
                 Field::I64("value_r")});
}

/// Drains a root operator and concatenates all collection items it yields
/// into one RowVector of `schema`.
Result<RowVectorPtr> DrainCollections(SubOperator* root, ExecContext* ctx,
                                      const Schema& schema);

}  // namespace modularis::plans

#endif  // MODULARIS_PLANS_COMMON_H_
