#include "plans/distributed_join.h"

#include "suboperators/agg_ops.h"
#include "suboperators/partition_ops.h"

namespace modularis::plans {

namespace {

/// Builds the innermost nested plan (per local-partition pair): hash
/// build-and-probe plus recovery of the compressed key bits.
/// Parameter tuple: ⟨pid, lpid, data_inner, pid, lpid, data_outer⟩.
SubOpPtr BuildProbeNestedPlan(const DistJoinOptions& opts,
                              const Schema& part_schema) {
  const bool fused = opts.exec.enable_fusion;
  auto build = MaybeScan(ParamItem(2), fused);
  auto probe = MaybeScan(ParamItem(5), fused);
  const int F = opts.exec.network_radix_bits;
  const int P = opts.exec.key_domain_bits;
  auto bp = std::make_unique<BuildProbe>(
      std::move(build), std::move(probe), part_schema, part_schema,
      /*build_key_col=*/0, /*probe_key_col=*/0, opts.join_type,
      /*key_shift=*/opts.compress ? P : 0);

  SubOpPtr transformed;
  Schema out_schema;
  if (opts.join_type == JoinType::kInner) {
    out_schema = JoinOutSchema();
    if (opts.compress && fused) {
      // Fused form: materialize the compressed pairs once, then recover
      // the key bits in one tight loop (the JIT-inlined UDF analog).
      Schema pair_schema = part_schema.Concat(part_schema);
      auto pairs = std::make_unique<MaterializeRowVector>(std::move(bp),
                                                          pair_schema);
      Schema out = out_schema;
      return CloneSafe(std::make_unique<ParametrizedMap>(
          ParamItem(0), std::move(pairs), out_schema,
          ParametrizedMap::BulkFn(
              [F, P, out](const Tuple& param, const RowVector& in) {
                RowVectorPtr res = RowVector::Make(out);
                res->Reserve(in.size());
                const int64_t pid = param[0].i64();
                const uint32_t stride = in.row_size();
                const uint8_t* p = in.data();
                uint8_t row[24];
                for (size_t i = 0; i < in.size(); ++i, p += stride) {
                  int64_t word, word_r;
                  std::memcpy(&word, p, 8);
                  std::memcpy(&word_r, p + 8, 8);
                  int64_t key, value, key_r, value_r;
                  DecompressKV(word, pid, F, P, &key, &value);
                  DecompressKV(word_r, pid, F, P, &key_r, &value_r);
                  std::memcpy(row, &key, 8);
                  std::memcpy(row + 8, &value, 8);
                  std::memcpy(row + 16, &value_r, 8);
                  res->AppendRaw(row);
                }
                return res;
              })));
    }
    if (opts.compress) {
      // ⟨word, word_r⟩ → ⟨key, value, value_r⟩ given the network pid.
      transformed = CloneSafe(std::make_unique<ParametrizedMap>(
          ParamItem(0), std::move(bp), out_schema,
          [F, P](const Tuple& param, const RowRef& in, RowWriter* w) {
            int64_t pid = param[0].i64();
            int64_t key, value, key_r, value_r;
            DecompressKV(in.GetInt64(0), pid, F, P, &key, &value);
            DecompressKV(in.GetInt64(1), pid, F, P, &key_r, &value_r);
            w->SetInt64(0, key);
            w->SetInt64(1, value);
            w->SetInt64(2, value_r);
          }));
    } else {
      // ⟨key, value, key_r, value_r⟩ → ⟨key, value, value_r⟩.
      transformed = std::make_unique<MapOp>(
          std::move(bp), out_schema,
          std::vector<MapOutput>{MapOutput::Pass(0), MapOutput::Pass(1),
                                 MapOutput::Pass(3)});
    }
  } else {
    // Semi/anti joins emit the surviving probe records.
    out_schema = KeyValueSchema();
    if (opts.compress) {
      transformed = CloneSafe(std::make_unique<ParametrizedMap>(
          ParamItem(0), std::move(bp), out_schema,
          [F, P](const Tuple& param, const RowRef& in, RowWriter* w) {
            int64_t key, value;
            DecompressKV(in.GetInt64(0), param[0].i64(), F, P, &key, &value);
            w->SetInt64(0, key);
            w->SetInt64(1, value);
          }));
    } else {
      transformed = std::make_unique<MapOp>(
          std::move(bp), out_schema,
          std::vector<MapOutput>{MapOutput::Pass(0), MapOutput::Pass(1)});
    }
  }
  return std::make_unique<MaterializeRowVector>(std::move(transformed),
                                                out_schema);
}

/// Builds the first nested plan (per network-partition pair): local
/// histograms + cache-conscious local partitioning on both sides, pid
/// re-attachment, then the inner NestedMap over local-partition pairs.
/// Parameter tuple: ⟨pid_inner, data_inner, pid_outer, data_outer⟩.
SubOpPtr BuildLocalJoinNestedPlan(const DistJoinOptions& opts,
                                  const Schema& part_schema) {
  const bool fused = opts.exec.enable_fusion;
  // The local radix pass consumes the bits just above the network pass:
  // on compressed words the key's high bits sit above the P value bits.
  RadixSpec local_spec;
  local_spec.bits = opts.exec.local_radix_bits;
  local_spec.shift = opts.compress ? opts.exec.key_domain_bits
                                   : opts.exec.network_radix_bits;

  auto plan = std::make_unique<PipelinePlan>();
  const char* lh_names[2] = {"lh_inner", "lh_outer"};
  const char* lp_names[2] = {"lp_inner", "lp_outer"};
  const char* cp_names[2] = {"cp_inner", "cp_outer"};
  for (int side = 0; side < 2; ++side) {
    int pid_item = side * 2;
    int data_item = side * 2 + 1;
    plan->Add(lh_names[side],
              std::make_unique<LocalHistogram>(
                  MaybeScan(ParamItem(data_item), fused), local_spec,
                  /*key_col=*/0, "phase.local_partition"));
    plan->Add(lp_names[side],
              std::make_unique<LocalPartition>(
                  MaybeScan(ParamItem(data_item), fused),
                  plan->MakeRef(lh_names[side]), local_spec, /*key_col=*/0,
                  "phase.local_partition"));
    plan->Add(cp_names[side],
              std::make_unique<CartesianProduct>(
                  ParamItem(pid_item), plan->MakeRef(lp_names[side])));
  }

  auto zip = std::make_unique<Zip>(plan->MakeRef(cp_names[0]),
                                   plan->MakeRef(cp_names[1]));
  auto nested = std::make_unique<NestedMap>(
      std::move(zip), BuildProbeNestedPlan(opts, part_schema));
  Schema out_schema = opts.join_type == JoinType::kInner ? JoinOutSchema()
                                                         : KeyValueSchema();
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), fused), out_schema));
  return plan;
}

}  // namespace

SubOpPtr BuildJoinRankPlan(const DistJoinOptions& opts) {
  const bool fused = opts.exec.enable_fusion;
  RadixSpec net_spec;
  net_spec.bits = opts.exec.network_radix_bits;
  net_spec.shift = 0;
  const Schema part_schema =
      opts.compress ? CompressedSchema() : KeyValueSchema();

  auto plan = std::make_unique<PipelinePlan>();
  const char* lh_names[2] = {"lh_inner", "lh_outer"};
  const char* mh_names[2] = {"mh_inner", "mh_outer"};
  const char* mx_names[2] = {"mx_inner", "mx_outer"};
  for (int side = 0; side < 2; ++side) {
    plan->Add(lh_names[side],
              std::make_unique<LocalHistogram>(MaybeScan(ParamItem(side), fused),
                                               net_spec, /*key_col=*/0));
    plan->Add(mh_names[side],
              std::make_unique<MpiHistogram>(plan->MakeRef(lh_names[side])));
    MpiExchange::Options xopts;
    xopts.spec = net_spec;
    xopts.key_col = 0;
    xopts.compress = opts.compress;
    xopts.domain_bits = opts.exec.key_domain_bits;
    xopts.buffer_bytes = opts.exec.exchange_buffer_bytes;
    plan->Add(mx_names[side],
              std::make_unique<MpiExchange>(
                  MaybeScan(ParamItem(side), fused),
                  plan->MakeRef(lh_names[side]),
                  plan->MakeRef(mh_names[side]), xopts));
  }

  auto zip = std::make_unique<Zip>(plan->MakeRef(mx_names[0]),
                                   plan->MakeRef(mx_names[1]));
  auto nested = std::make_unique<NestedMap>(
      std::move(zip), BuildLocalJoinNestedPlan(opts, part_schema));
  Schema out_schema = opts.join_type == JoinType::kInner ? JoinOutSchema()
                                                         : KeyValueSchema();
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), fused), out_schema));
  return plan;
}

Result<RowVectorPtr> RunDistributedJoin(
    const std::vector<RowVectorPtr>& inner,
    const std::vector<RowVectorPtr>& outer, const DistJoinOptions& opts,
    StatsRegistry* stats) {
  if (static_cast<int>(inner.size()) != opts.world_size ||
      static_cast<int>(outer.size()) != opts.world_size) {
    return Status::InvalidArgument(
        "RunDistributedJoin: need one input fragment per rank");
  }
  MpiExecutor::Config config;
  config.world_size = opts.world_size;
  config.fabric = opts.fabric;
  config.plan_factory = [&opts](int) { return BuildJoinRankPlan(opts); };
  config.rank_params = [&inner, &outer](int rank) {
    return Tuple{Item(inner[rank]), Item(outer[rank])};
  };
  MpiExecutor executor(std::move(config));

  ExecContext driver;
  driver.options = opts.exec;
  driver.stats = stats;
  Schema out_schema = opts.join_type == JoinType::kInner ? JoinOutSchema()
                                                         : KeyValueSchema();
  return DrainCollections(&executor, &driver, out_schema);
}

}  // namespace modularis::plans
