#include "plans/distributed_join.h"

#include <cstdio>
#include <cstdlib>

#include "planner/kv_lower.h"

namespace modularis::plans {

namespace {

namespace lp = planner::lp;

/// The Fig. 3 template as IR: both base relations cross the network
/// exactly once; inner joins prune the duplicate key column. The
/// physical shapes (compressed exchange, nested local partitioning,
/// key-bit recovery) live in the planner's KV lowering.
planner::LogicalPlanPtr JoinTemplate(JoinType type) {
  auto inner = lp::Exchange(lp::Scan(0, "inner", KeyValueSchema()), 0);
  auto outer = lp::Exchange(lp::Scan(1, "outer", KeyValueSchema()), 0);
  auto join = lp::Join(std::move(inner), std::move(outer), type, 0, 0);
  if (type != JoinType::kInner) return join;
  return lp::Project(std::move(join),
                     {MapOutput::Pass(0), MapOutput::Pass(1),
                      MapOutput::Pass(3)},
                     JoinOutSchema());
}

planner::KvLowerOptions KvOptions(const DistJoinOptions& opts) {
  planner::KvLowerOptions kv;
  kv.compress = opts.compress;
  kv.exec = opts.exec;
  return kv;
}

}  // namespace

SubOpPtr BuildJoinRankPlan(const DistJoinOptions& opts) {
  auto lowered =
      planner::LowerKvJoin(*JoinTemplate(opts.join_type), KvOptions(opts));
  if (!lowered.ok()) {
    // Unreachable: the template above is exactly the accepted shape.
    std::fprintf(stderr, "BuildJoinRankPlan: %s\n",
                 lowered.status().ToString().c_str());
    std::abort();
  }
  return lowered.TakeValue();
}

Result<RowVectorPtr> RunDistributedJoin(
    const std::vector<RowVectorPtr>& inner,
    const std::vector<RowVectorPtr>& outer, const DistJoinOptions& opts,
    StatsRegistry* stats) {
  if (static_cast<int>(inner.size()) != opts.world_size ||
      static_cast<int>(outer.size()) != opts.world_size) {
    return Status::InvalidArgument(
        "RunDistributedJoin: need one input fragment per rank");
  }
  MpiExecutor::Config config;
  config.world_size = opts.world_size;
  config.fabric = opts.fabric;
  config.plan_factory = [&opts](int) { return BuildJoinRankPlan(opts); };
  config.rank_params = [&inner, &outer](int rank) {
    return Tuple{Item(inner[rank]), Item(outer[rank])};
  };
  MpiExecutor executor(std::move(config));

  ExecContext driver;
  driver.options = opts.exec;
  driver.stats = stats;
  Schema out_schema = opts.join_type == JoinType::kInner ? JoinOutSchema()
                                                         : KeyValueSchema();
  return DrainCollections(&executor, &driver, out_schema);
}

}  // namespace modularis::plans
