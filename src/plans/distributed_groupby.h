#ifndef MODULARIS_PLANS_DISTRIBUTED_GROUPBY_H_
#define MODULARIS_PLANS_DISTRIBUTED_GROUPBY_H_

#include <vector>

#include "core/stats.h"
#include "mpi/mpi_ops.h"
#include "plans/common.h"

/// \file distributed_groupby.h
/// The distributed GROUP BY of paper §4.3 (Fig. 5), built almost entirely
/// from the join plan's sub-operators — the paper's demonstration that
/// modularity turns "implement a new operator" into "recompose existing
/// ones plus ReduceByKey".
///
///   LocalHistogram → MpiHistogram → MpiExchange →
///   NestedMap( per network partition:
///     LocalHistogram/LocalPartition → CartesianProduct →
///     NestedMap( per local partition:
///       ParametrizedMap (restore keys) → ReduceByKey →
///       MaterializeRowVector ) → RowScan → Materialize )
///   → RowScan → MaterializeRowVector

namespace modularis::plans {

struct DistGroupByOptions {
  int world_size = 4;
  net::FabricOptions fabric;
  ExecOptions exec;
  /// §4.1.2 key/value compression in the exchange ("crucial for
  /// performance", §4.3).
  bool compress = true;
};

/// Output schema: ⟨key, sum⟩.
inline Schema GroupByOutSchema() {
  return Schema({Field::I64("key"), Field::I64("sum")});
}

/// Builds one rank's Fig. 5 plan. Rank parameter tuple: ⟨data collection⟩.
SubOpPtr BuildGroupByRankPlan(const DistGroupByOptions& opts);

/// Runs the distributed GROUP BY over per-rank kv16 fragments and returns
/// the grouped sums (keys are hash-partitioned, so rank results are
/// disjoint and concatenate directly).
Result<RowVectorPtr> RunDistributedGroupBy(
    const std::vector<RowVectorPtr>& fragments,
    const DistGroupByOptions& opts, StatsRegistry* stats);

}  // namespace modularis::plans

#endif  // MODULARIS_PLANS_DISTRIBUTED_GROUPBY_H_
