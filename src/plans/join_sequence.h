#ifndef MODULARIS_PLANS_JOIN_SEQUENCE_H_
#define MODULARIS_PLANS_JOIN_SEQUENCE_H_

#include <vector>

#include "core/stats.h"
#include "mpi/mpi_ops.h"
#include "plans/common.h"

/// \file join_sequence.h
/// Sequences of joins on a common attribute (paper §4.2, Fig. 4). Two plan
/// variants, both assembled from the same sub-operators:
///
///  * Naive: every join stage network-partitions both of its inputs —
///    including the previous stage's output — so a cascade of N joins
///    shuffles 2N relations.
///  * Optimized: because all joins share the key attribute, all N+1 base
///    relations are network-partitioned once up front; the entire cascade
///    then runs inside one NestedMap over the co-partitioned data, chaining
///    BuildProbe operators, and only the final result is materialized.
///
/// The paper highlights this as the restructuring that monolithic join
/// implementations cannot express without a rewrite.

namespace modularis::plans {

struct JoinSequenceOptions {
  int world_size = 4;
  net::FabricOptions fabric;
  ExecOptions exec;
};

/// Output schema of an N-join cascade: ⟨key, v0, v1, ..., vN⟩.
Schema SequenceOutSchema(int num_joins);

/// Builds one rank's plan for the naive cascade. Parameter tuple:
/// ⟨R0, R1, ..., RN⟩ (kv16 fragments).
SubOpPtr BuildNaiveSequenceRankPlan(int num_joins,
                                    const JoinSequenceOptions& opts);

/// Builds one rank's plan for the pre-partitioned (optimized) cascade.
SubOpPtr BuildOptimizedSequenceRankPlan(int num_joins,
                                        const JoinSequenceOptions& opts);

/// Runs a cascade of `relations.size() - 1` joins. `relations[i]` holds
/// relation i's per-rank fragments. `optimized` picks the Fig. 4 variant.
Result<RowVectorPtr> RunJoinSequence(
    const std::vector<std::vector<RowVectorPtr>>& relations,
    const JoinSequenceOptions& opts, bool optimized, StatsRegistry* stats);

}  // namespace modularis::plans

#endif  // MODULARIS_PLANS_JOIN_SEQUENCE_H_
