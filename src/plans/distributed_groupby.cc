#include "plans/distributed_groupby.h"

#include "suboperators/agg_ops.h"
#include "suboperators/partition_ops.h"

namespace modularis::plans {

namespace {

/// Innermost nested plan (per local partition): restore full keys, then
/// aggregate. Parameter tuple: ⟨pid, lpid, data⟩.
SubOpPtr BuildAggregateNestedPlan(const DistGroupByOptions& opts) {
  const bool fused = opts.exec.enable_fusion;
  const int F = opts.exec.network_radix_bits;
  const int P = opts.exec.key_domain_bits;

  SubOpPtr records;
  if (opts.compress && fused) {
    // Fused form: restore the keys of the whole partition in one tight
    // loop (the JIT-inlined UDF analog).
    records = CloneSafe(std::make_unique<ParametrizedMap>(
        ParamItem(0), ParamItem(2), KeyValueSchema(),
        ParametrizedMap::BulkFn(
            [F, P](const Tuple& param, const RowVector& in) {
              RowVectorPtr res = RowVector::Make(KeyValueSchema());
              res->Reserve(in.size());
              const int64_t pid = param[0].i64();
              const uint32_t stride = in.row_size();
              const uint8_t* p = in.data();
              uint8_t row[16];
              for (size_t i = 0; i < in.size(); ++i, p += stride) {
                int64_t word;
                std::memcpy(&word, p, 8);
                int64_t key, value;
                DecompressKV(word, pid, F, P, &key, &value);
                std::memcpy(row, &key, 8);
                std::memcpy(row + 8, &value, 8);
                res->AppendRaw(row);
              }
              return res;
            })));
  } else if (opts.compress) {
    // Restore the full keys before the ReduceByKey (paper §4.3: unlike the
    // join, recovery happens before the aggregation).
    records = CloneSafe(std::make_unique<ParametrizedMap>(
        ParamItem(0), MaybeScan(ParamItem(2), fused), KeyValueSchema(),
        [F, P](const Tuple& param, const RowRef& in, RowWriter* w) {
          int64_t key, value;
          DecompressKV(in.GetInt64(0), param[0].i64(), F, P, &key, &value);
          w->SetInt64(0, key);
          w->SetInt64(1, value);
        }));
  } else {
    records = MaybeScan(ParamItem(2), fused);
  }

  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kSum, ex::Col(1), "sum", AtomType::kInt64});
  auto rk = std::make_unique<ReduceByKey>(std::move(records),
                                          std::vector<int>{0}, std::move(aggs),
                                          KeyValueSchema());
  return std::make_unique<MaterializeRowVector>(std::move(rk),
                                                GroupByOutSchema());
}

/// Per network-partition nested plan. Parameter tuple: ⟨pid, data⟩.
SubOpPtr BuildLocalGroupNestedPlan(const DistGroupByOptions& opts) {
  const bool fused = opts.exec.enable_fusion;
  RadixSpec local_spec;
  local_spec.bits = opts.exec.local_radix_bits;
  local_spec.shift = opts.compress ? opts.exec.key_domain_bits
                                   : opts.exec.network_radix_bits;

  auto plan = std::make_unique<PipelinePlan>();
  plan->Add("lh", std::make_unique<LocalHistogram>(
                      MaybeScan(ParamItem(1), fused), local_spec,
                      /*key_col=*/0, "phase.local_partition"));
  plan->Add("lp", std::make_unique<LocalPartition>(
                      MaybeScan(ParamItem(1), fused), plan->MakeRef("lh"),
                      local_spec, /*key_col=*/0, "phase.local_partition"));
  plan->Add("cp", std::make_unique<CartesianProduct>(ParamItem(0),
                                                     plan->MakeRef("lp")));

  auto nested = std::make_unique<NestedMap>(plan->MakeRef("cp"),
                                            BuildAggregateNestedPlan(opts));
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), fused), GroupByOutSchema()));
  return plan;
}

}  // namespace

SubOpPtr BuildGroupByRankPlan(const DistGroupByOptions& opts) {
  const bool fused = opts.exec.enable_fusion;
  RadixSpec net_spec;
  net_spec.bits = opts.exec.network_radix_bits;
  net_spec.shift = 0;

  auto plan = std::make_unique<PipelinePlan>();
  plan->Add("lh", std::make_unique<LocalHistogram>(
                      MaybeScan(ParamItem(0), fused), net_spec, 0));
  plan->Add("mh", std::make_unique<MpiHistogram>(plan->MakeRef("lh")));
  MpiExchange::Options xopts;
  xopts.spec = net_spec;
  xopts.key_col = 0;
  xopts.compress = opts.compress;
  xopts.domain_bits = opts.exec.key_domain_bits;
  xopts.buffer_bytes = opts.exec.exchange_buffer_bytes;
  plan->Add("mx", std::make_unique<MpiExchange>(
                      MaybeScan(ParamItem(0), fused), plan->MakeRef("lh"),
                      plan->MakeRef("mh"), xopts));

  auto nested = std::make_unique<NestedMap>(plan->MakeRef("mx"),
                                            BuildLocalGroupNestedPlan(opts));
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), fused), GroupByOutSchema()));
  return plan;
}

Result<RowVectorPtr> RunDistributedGroupBy(
    const std::vector<RowVectorPtr>& fragments,
    const DistGroupByOptions& opts, StatsRegistry* stats) {
  if (static_cast<int>(fragments.size()) != opts.world_size) {
    return Status::InvalidArgument(
        "RunDistributedGroupBy: need one fragment per rank");
  }
  MpiExecutor::Config config;
  config.world_size = opts.world_size;
  config.fabric = opts.fabric;
  config.plan_factory = [&opts](int) { return BuildGroupByRankPlan(opts); };
  config.rank_params = [&fragments](int rank) {
    return Tuple{Item(fragments[rank])};
  };
  MpiExecutor executor(std::move(config));

  ExecContext driver;
  driver.options = opts.exec;
  driver.stats = stats;
  return DrainCollections(&executor, &driver, GroupByOutSchema());
}

}  // namespace modularis::plans
