#include "plans/distributed_groupby.h"

#include <cstdio>
#include <cstdlib>

#include "planner/kv_lower.h"

namespace modularis::plans {

namespace {

namespace lp = planner::lp;

/// The Fig. 5 template as IR: SUM(value) GROUP BY key over the exchanged
/// base relation. The physical shapes (compressed exchange, nested local
/// partitioning, key restoration before ReduceByKey) live in the
/// planner's KV lowering.
planner::LogicalPlanPtr GroupByTemplate() {
  auto data = lp::Exchange(lp::Scan(0, "data", KeyValueSchema()), 0);
  return lp::Aggregate(
      std::move(data), {0},
      {AggSpec{AggKind::kSum, ex::Col(1), "sum", AtomType::kInt64}});
}

}  // namespace

SubOpPtr BuildGroupByRankPlan(const DistGroupByOptions& opts) {
  planner::KvLowerOptions kv;
  kv.compress = opts.compress;
  kv.exec = opts.exec;
  auto lowered = planner::LowerKvGroupBy(*GroupByTemplate(), kv);
  if (!lowered.ok()) {
    // Unreachable: the template above is exactly the accepted shape.
    std::fprintf(stderr, "BuildGroupByRankPlan: %s\n",
                 lowered.status().ToString().c_str());
    std::abort();
  }
  return lowered.TakeValue();
}

Result<RowVectorPtr> RunDistributedGroupBy(
    const std::vector<RowVectorPtr>& fragments,
    const DistGroupByOptions& opts, StatsRegistry* stats) {
  if (static_cast<int>(fragments.size()) != opts.world_size) {
    return Status::InvalidArgument(
        "RunDistributedGroupBy: need one fragment per rank");
  }
  MpiExecutor::Config config;
  config.world_size = opts.world_size;
  config.fabric = opts.fabric;
  config.plan_factory = [&opts](int) { return BuildGroupByRankPlan(opts); };
  config.rank_params = [&fragments](int rank) {
    return Tuple{Item(fragments[rank])};
  };
  MpiExecutor executor(std::move(config));

  ExecContext driver;
  driver.options = opts.exec;
  driver.stats = stats;
  return DrainCollections(&executor, &driver, GroupByOutSchema());
}

}  // namespace modularis::plans
