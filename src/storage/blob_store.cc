#include "storage/blob_store.h"

#include <chrono>
#include <thread>

namespace modularis::storage {

void BlobClient::ChargeRequest(size_t bytes) {
  double seconds =
      options_.request_latency_seconds +
      static_cast<double>(bytes) / options_.bandwidth_bytes_per_sec;
  charged_seconds_ += seconds;
  bytes_ += static_cast<int64_t>(bytes);
  ++requests_;
  if (options_.throttle && seconds > 50e-6) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

Status BlobClient::MaybeFailAndCharge(FaultSite site, size_t bytes) {
  if (injector_.enabled()) {
    Status st = injector_.MaybeInject(site);
    if (!st.ok()) {
      // Failed requests still cost a round trip.
      ChargeRequest(0);
      return st;
    }
  }
  ChargeRequest(bytes);
  return Status::OK();
}

Result<std::string> BlobClient::Get(const std::string& key) {
  // The existence check comes first: a missing object is kNotFound (fails
  // fast — not retryable), never masked by an injected transient.
  MODULARIS_ASSIGN_OR_RETURN(BlobStore::Blob blob, store_->Get(key));
  MODULARIS_RETURN_NOT_OK(MaybeFailAndCharge(FaultSite::kBlobGet, blob->size()));
  return std::string(*blob);
}

Result<std::string> BlobClient::GetRange(const std::string& key,
                                         size_t offset, size_t len) {
  MODULARIS_ASSIGN_OR_RETURN(BlobStore::Blob blob, store_->Get(key));
  if (offset > blob->size()) {
    return Status::OutOfRange("range offset beyond object size");
  }
  len = std::min(len, blob->size() - offset);
  MODULARIS_RETURN_NOT_OK(MaybeFailAndCharge(FaultSite::kBlobGetRange, len));
  return blob->substr(offset, len);
}

Status BlobClient::Put(const std::string& key, std::string value) {
  MODULARIS_RETURN_NOT_OK(MaybeFailAndCharge(FaultSite::kBlobPut, value.size()));
  store_->Put(key, std::move(value));
  return Status::OK();
}

Result<size_t> BlobClient::Head(const std::string& key) {
  MODULARIS_ASSIGN_OR_RETURN(BlobStore::Blob blob, store_->Get(key));
  MODULARIS_RETURN_NOT_OK(MaybeFailAndCharge(FaultSite::kBlobHead, 0));
  return blob->size();
}

}  // namespace modularis::storage
