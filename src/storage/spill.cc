#include "storage/spill.h"

#include <atomic>
#include <cstring>

#include "core/fault.h"

namespace modularis::storage {

namespace {
/// Process-wide uniquifier: cloned operators (parallel NestedMap workers
/// run one BuildProbe clone per worker, concurrently) must never collide
/// on a prefix. Uniqueness is all that matters — spill objects are
/// private scratch, deleted before the operator closes, so the names
/// need not be deterministic.
std::atomic<uint64_t> g_spill_seq{0};
}  // namespace

SpillSet::SpillSet(ExecContext* ctx, const char* op_tag) : ctx_(ctx) {
  BlobClientOptions opts = BlobClientOptions::Unthrottled();
  opts.profile = "spill";
  opts.fault = ctx->options.spill_fault;
  client_ = std::make_unique<BlobClient>(ctx->spill_store, opts, ctx->rank);
  prefix_ = "spill/" + std::string(op_tag) + "-r" +
            std::to_string(ctx->rank) + "-" +
            std::to_string(g_spill_seq.fetch_add(1)) + "/";
}

SpillSet::~SpillSet() { DeleteAll(); }

std::string SpillSet::ChunkKey(int pass, int pid, int chunk) const {
  return prefix_ + "p" + std::to_string(pass) + "/d" + std::to_string(pid) +
         "/c" + std::to_string(chunk);
}

Status SpillSet::WriteChunk(int pass, int pid, const uint8_t* rows, size_t n,
                            uint32_t stride, const uint32_t* idx) {
  if (n == 0) return Status::OK();
  int& count = chunk_counts_[{pass, pid}];
  const std::string key = ChunkKey(pass, pid, count);

  std::string payload;
  const uint32_t n32 = static_cast<uint32_t>(n);
  payload.reserve(sizeof(n32) + n * stride + n * sizeof(uint32_t));
  payload.append(reinterpret_cast<const char*>(&n32), sizeof(n32));
  payload.append(reinterpret_cast<const char*>(rows), n * stride);
  payload.append(reinterpret_cast<const char*>(idx), n * sizeof(uint32_t));

  Status st = RetryCall(
      ctx_->options.retry, ctx_->stats, "spill.put",
      [&] { return client_->Put(key, payload); }, ctx_->cancel);
  if (!st.ok()) return st;
  ++count;
  bytes_written_ += static_cast<int64_t>(payload.size());
  if (ctx_->stats != nullptr) {
    ctx_->stats->AddCounter("spill.bytes",
                            static_cast<int64_t>(payload.size()));
    ctx_->stats->AddCounter("spill.chunks", 1);
  }
  return Status::OK();
}

int SpillSet::NumChunks(int pass, int pid) const {
  auto it = chunk_counts_.find({pass, pid});
  return it == chunk_counts_.end() ? 0 : it->second;
}

Status SpillSet::ReadChunk(int pass, int pid, int chunk, RowVector* rows,
                           std::vector<uint32_t>* idx) {
  const std::string key = ChunkKey(pass, pid, chunk);
  auto blob = RetryCall(
      ctx_->options.retry, ctx_->stats, "spill.get",
      [&] { return client_->Get(key); }, ctx_->cancel);
  if (!blob.ok()) return blob.status();
  const std::string& payload = *blob;

  uint32_t n = 0;
  if (payload.size() < sizeof(n)) {
    return Status::Internal("spill chunk " + key + " truncated header");
  }
  std::memcpy(&n, payload.data(), sizeof(n));
  const uint32_t stride = rows != nullptr ? rows->row_size() : 0;
  const size_t row_bytes = static_cast<size_t>(n) * stride;
  const size_t idx_bytes = static_cast<size_t>(n) * sizeof(uint32_t);
  if (rows != nullptr && payload.size() != sizeof(n) + row_bytes + idx_bytes) {
    return Status::Internal("spill chunk " + key + " size mismatch");
  }
  const uint8_t* p = reinterpret_cast<const uint8_t*>(payload.data()) +
                     sizeof(n);
  if (rows != nullptr) {
    rows->AppendRawBatch(p, n);
  }
  if (idx != nullptr) {
    const size_t old = idx->size();
    idx->resize(old + n);
    std::memcpy(idx->data() + old, p + row_bytes, idx_bytes);
  }
  return Status::OK();
}

Status SpillSet::ReadPartition(int pass, int pid, RowVector* rows,
                               std::vector<uint32_t>* idx) {
  const int chunks = NumChunks(pass, pid);
  for (int c = 0; c < chunks; ++c) {
    Status st = ReadChunk(pass, pid, c, rows, idx);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

void SpillSet::DeletePartition(int pass, int pid) {
  auto it = chunk_counts_.find({pass, pid});
  if (it == chunk_counts_.end()) return;
  for (int c = 0; c < it->second; ++c) {
    client_->store()->Delete(ChunkKey(pass, pid, c));
  }
  chunk_counts_.erase(it);
}

void SpillSet::DeleteAll() {
  for (const auto& [key, count] : chunk_counts_) {
    for (int c = 0; c < count; ++c) {
      client_->store()->Delete(ChunkKey(key.first, key.second, c));
    }
  }
  chunk_counts_.clear();
}

}  // namespace modularis::storage
