#ifndef MODULARIS_STORAGE_BLOB_STORE_H_
#define MODULARIS_STORAGE_BLOB_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/fault.h"
#include "core/status.h"

/// \file blob_store.h
/// In-process object store with a request-cost model. One implementation
/// serves as both substitutes the paper's platforms need (DESIGN.md §1):
///  * "S3": high first-byte latency, ~80 Mbit/s per-connection bandwidth
///    (the serverless bottleneck reported by Lambada [52]), transient
///    failures for retry testing;
///  * "NFS/disk": low latency, disk-like bandwidth for the RDMA cluster's
///    base-table reads (the "w disc" TPC-H variant of Fig. 8).

namespace modularis::storage {

/// Client-side request cost model.
struct BlobClientOptions {
  std::string profile = "s3";
  /// Added to every request (first-byte latency).
  double request_latency_seconds = 0.015;
  /// Per-connection transfer bandwidth in bytes/second.
  double bandwidth_bytes_per_sec = 10e6;  // 80 Mbit/s
  /// Deterministic transient-failure injection at Get/GetRange/Put/Head
  /// (core/fault.h; replaces the old one-off transient_failure_rate RNG
  /// hook). Failures fire before the store side effect, so a retried Put
  /// lands exactly one copy.
  FaultOptions fault;
  /// When false, no sleeping; costs are still accounted.
  bool throttle = true;

  static BlobClientOptions S3() { return BlobClientOptions{}; }
  static BlobClientOptions Nfs() {
    BlobClientOptions o;
    o.profile = "nfs";
    o.request_latency_seconds = 0.0002;
    o.bandwidth_bytes_per_sec = 500e6;
    return o;
  }
  /// Free access (functional tests).
  static BlobClientOptions Unthrottled() {
    BlobClientOptions o;
    o.profile = "mem";
    o.request_latency_seconds = 0;
    o.bandwidth_bytes_per_sec = 1e18;
    o.throttle = false;
    return o;
  }
};

/// Thread-safe shared object store. Values are immutable once put.
class BlobStore {
 public:
  using Blob = std::shared_ptr<const std::string>;

  void Put(const std::string& key, std::string value) {
    std::lock_guard<std::mutex> lock(mu_);
    objects_[key] = std::make_shared<const std::string>(std::move(value));
    ++puts_;
  }

  Result<Blob> Get(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      return Status::NotFound("no such object: " + key);
    }
    ++gets_;
    return it->second;
  }

  bool Exists(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return objects_.count(key) > 0;
  }

  std::vector<std::string> List(const std::string& prefix) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> keys;
    for (auto it = objects_.lower_bound(prefix);
         it != objects_.end() && it->first.compare(0, prefix.size(), prefix,
                                                   0, prefix.size()) == 0;
         ++it) {
      keys.push_back(it->first);
    }
    return keys;
  }

  void Delete(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    objects_.erase(key);
  }

  int64_t num_gets() const { return gets_; }
  int64_t num_puts() const { return puts_; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, Blob> objects_;
  mutable std::atomic<int64_t> gets_{0};
  int64_t puts_ = 0;
};

/// Per-worker client applying the request-cost model (latency, bandwidth,
/// fault injection) on top of a shared BlobStore. Not thread-safe; one
/// per worker. The injector is salted with the worker id, so each worker
/// draws an independent — but run-to-run reproducible — failure sequence.
class BlobClient {
 public:
  BlobClient(BlobStore* store, BlobClientOptions options, int worker_id = 0)
      : store_(store),
        options_(std::move(options)),
        injector_(options_.fault,
                  /*salt=*/0x9E3779B9ull ^ static_cast<uint64_t>(worker_id)) {}

  /// Full-object GET.
  Result<std::string> Get(const std::string& key);
  /// Ranged GET of `len` bytes at `offset` (clamped to object size).
  Result<std::string> GetRange(const std::string& key, size_t offset,
                               size_t len);
  /// PUT (copies the payload into the store).
  Status Put(const std::string& key, std::string value);
  /// Object size without transfer.
  Result<size_t> Head(const std::string& key);
  std::vector<std::string> List(const std::string& prefix) {
    ChargeRequest(0);
    return store_->List(prefix);
  }

  /// Accounts (and sleeps for) a synthetic transfer of `bytes` — used by
  /// S3Select to model streaming its CSV result to the caller.
  void AccountTransfer(size_t bytes) { ChargeRequest(bytes); }

  /// Cumulative modelled IO time (seconds) and bytes for this client.
  double charged_seconds() const { return charged_seconds_; }
  int64_t bytes_transferred() const { return bytes_; }
  int64_t requests() const { return requests_; }

  BlobStore* store() { return store_; }
  const BlobClientOptions& options() const { return options_; }
  /// This client's injector ("fault.injected.blob.*" counter export).
  const FaultInjector& fault_injector() const { return injector_; }

 private:
  /// Injects a transient failure at `site` (if configured) and charges the
  /// request latency + transfer time for `bytes`. Fires before the caller
  /// touches the store, so failed ops have no storage side effect.
  Status MaybeFailAndCharge(FaultSite site, size_t bytes);
  void ChargeRequest(size_t bytes);

  BlobStore* store_;
  BlobClientOptions options_;
  FaultInjector injector_;
  double charged_seconds_ = 0;
  int64_t bytes_ = 0;
  int64_t requests_ = 0;
};

}  // namespace modularis::storage

#endif  // MODULARIS_STORAGE_BLOB_STORE_H_
