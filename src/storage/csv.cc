#include "storage/csv.h"

#include <charconv>
#include <cstdio>

namespace modularis::storage {

std::string WriteCsv(const ColumnTable& table) {
  std::string out;
  const Schema& schema = table.schema();
  out.reserve(table.num_rows() * schema.num_fields() * 8);
  char buf[64];
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      if (c > 0) out.push_back(',');
      const Column& col = table.column(c);
      switch (schema.field(c).type) {
        case AtomType::kInt32:
          out += std::to_string(col.GetInt32(r));
          break;
        case AtomType::kInt64:
          out += std::to_string(col.GetInt64(r));
          break;
        case AtomType::kFloat64:
          std::snprintf(buf, sizeof(buf), "%.6f", col.GetFloat64(r));
          out += buf;
          break;
        case AtomType::kString:
          out += col.GetString(r);
          break;
        case AtomType::kDate:
          out += FormatDate(col.GetInt32(r));
          break;
      }
    }
    out.push_back('\n');
  }
  return out;
}

Result<ColumnTablePtr> ReadCsv(std::string_view text, const Schema& schema) {
  ColumnTablePtr table = ColumnTable::Make(schema);
  size_t pos = 0;
  const size_t n = text.size();
  size_t line_no = 0;
  while (pos < n) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = n;
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    size_t field_start = 0;
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      size_t comma = line.find(',', field_start);
      bool last = c + 1 == schema.num_fields();
      if (!last && comma == std::string_view::npos) {
        return Status::InvalidArgument(
            "CSV line " + std::to_string(line_no) + ": too few fields");
      }
      std::string_view cell = line.substr(
          field_start,
          (comma == std::string_view::npos ? line.size() : comma) -
              field_start);
      field_start = comma == std::string_view::npos ? line.size() : comma + 1;

      Column& col = table->column(c);
      switch (schema.field(c).type) {
        case AtomType::kInt32: {
          int32_t v = 0;
          auto [p, ec] =
              std::from_chars(cell.data(), cell.data() + cell.size(), v);
          if (ec != std::errc()) {
            return Status::InvalidArgument("CSV line " +
                                           std::to_string(line_no) +
                                           ": bad i32 '" + std::string(cell) +
                                           "'");
          }
          col.AppendInt32(v);
          break;
        }
        case AtomType::kInt64: {
          int64_t v = 0;
          auto [p, ec] =
              std::from_chars(cell.data(), cell.data() + cell.size(), v);
          if (ec != std::errc()) {
            return Status::InvalidArgument("CSV line " +
                                           std::to_string(line_no) +
                                           ": bad i64 '" + std::string(cell) +
                                           "'");
          }
          col.AppendInt64(v);
          break;
        }
        case AtomType::kFloat64: {
          // std::from_chars for double is not available on all libstdc++
          // configurations; strtod on a bounded copy is fine here.
          char buf[64];
          size_t len = std::min(cell.size(), sizeof(buf) - 1);
          std::memcpy(buf, cell.data(), len);
          buf[len] = '\0';
          col.AppendFloat64(std::strtod(buf, nullptr));
          break;
        }
        case AtomType::kString:
          col.AppendString(cell);
          break;
        case AtomType::kDate: {
          MODULARIS_ASSIGN_OR_RETURN(int32_t days, ParseDate(cell));
          col.AppendInt32(days);
          break;
        }
      }
    }
  }
  table->FinishBulkLoad();
  return table;
}

}  // namespace modularis::storage
