#include "storage/column_file.h"

#include <algorithm>
#include <cstring>
#include <map>

namespace modularis::storage {

namespace {

constexpr uint32_t kMagic = 0x3146434Du;  // "MCF1"

// -- Little-endian primitives ------------------------------------------------

template <typename T>
void PutFixed(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T GetFixed(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint64(const char** p, const char* end, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*p < end && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(**p);
    ++*p;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

// -- Chunk encoders ----------------------------------------------------------

struct EncodedChunk {
  std::string data;
  Encoding encoding = Encoding::kPlain;
  ColumnFileReader::ChunkStats stats;
};

template <typename Get>
EncodedChunk EncodeIntChunk(size_t begin, size_t end, const Get& get) {
  EncodedChunk chunk;
  chunk.encoding = Encoding::kForVarint;
  int64_t min = 0, max = 0;
  if (begin < end) {
    min = max = get(begin);
    for (size_t i = begin + 1; i < end; ++i) {
      int64_t v = get(i);
      min = std::min(min, v);
      max = std::max(max, v);
    }
  }
  chunk.stats = {true, min, max};
  PutFixed<int64_t>(&chunk.data, min);
  for (size_t i = begin; i < end; ++i) {
    PutVarint64(&chunk.data, static_cast<uint64_t>(get(i) - min));
  }
  return chunk;
}

EncodedChunk EncodeF64Chunk(const Column& col, size_t begin, size_t end) {
  EncodedChunk chunk;
  chunk.encoding = Encoding::kPlain;
  for (size_t i = begin; i < end; ++i) {
    PutFixed<double>(&chunk.data, col.GetFloat64(i));
  }
  return chunk;
}

EncodedChunk EncodeStringChunk(const Column& col, size_t begin, size_t end,
                               size_t dict_threshold) {
  std::map<std::string_view, uint32_t> dict;
  for (size_t i = begin; i < end && dict.size() <= dict_threshold; ++i) {
    dict.emplace(col.GetString(i), 0);
  }
  EncodedChunk chunk;
  if (dict.size() <= dict_threshold) {
    chunk.encoding = Encoding::kDict;
    uint32_t code = 0;
    for (auto& [sv, c] : dict) c = code++;
    PutVarint64(&chunk.data, dict.size());
    for (const auto& [sv, c] : dict) {
      PutVarint64(&chunk.data, sv.size());
      chunk.data.append(sv);
    }
    for (size_t i = begin; i < end; ++i) {
      PutVarint64(&chunk.data, dict.at(col.GetString(i)));
    }
  } else {
    chunk.encoding = Encoding::kPlain;
    for (size_t i = begin; i < end; ++i) {
      std::string_view sv = col.GetString(i);
      PutVarint64(&chunk.data, sv.size());
      chunk.data.append(sv);
    }
  }
  return chunk;
}

void WriteSchemaHeader(const Schema& schema, std::string* directory) {
  PutVarint64(directory, schema.num_fields());
  for (const Field& f : schema.fields()) {
    PutVarint64(directory, f.name.size());
    directory->append(f.name);
    directory->push_back(static_cast<char>(f.type));
    PutVarint64(directory, f.width);
  }
}

void AppendRowGroup(const ColumnTable& table, size_t begin, size_t end,
                    const ColumnFileWriteOptions& options, std::string* out,
                    std::string* directory) {
  const Schema& schema = table.schema();
  PutVarint64(directory, end - begin);
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    const Column& col = table.column(c);
    EncodedChunk chunk;
    switch (schema.field(c).type) {
      case AtomType::kInt32:
      case AtomType::kDate:
        chunk = EncodeIntChunk(begin, end,
                               [&](size_t i) { return col.GetInt32(i); });
        break;
      case AtomType::kInt64:
        chunk = EncodeIntChunk(begin, end,
                               [&](size_t i) { return col.GetInt64(i); });
        break;
      case AtomType::kFloat64:
        chunk = EncodeF64Chunk(col, begin, end);
        break;
      case AtomType::kString:
        chunk = EncodeStringChunk(col, begin, end, options.dict_threshold);
        break;
    }
    PutVarint64(directory, out->size());         // chunk offset
    PutVarint64(directory, chunk.data.size());   // chunk size
    directory->push_back(static_cast<char>(chunk.encoding));
    directory->push_back(chunk.stats.valid ? 1 : 0);
    PutFixed<int64_t>(directory, chunk.stats.min);
    PutFixed<int64_t>(directory, chunk.stats.max);
    *out += chunk.data;
  }
}

std::string Finish(std::string out, const std::string& directory) {
  uint64_t dir_offset = out.size();
  out += directory;
  PutFixed<uint64_t>(&out, dir_offset);
  PutFixed<uint32_t>(&out, static_cast<uint32_t>(directory.size()));
  PutFixed<uint32_t>(&out, kMagic);
  return out;
}

}  // namespace

std::string WriteColumnFile(const ColumnTable& table,
                            const ColumnFileWriteOptions& options) {
  std::string out;
  std::string directory;
  WriteSchemaHeader(table.schema(), &directory);

  size_t num_rows = table.num_rows();
  size_t rows_per_rg = std::max<size_t>(1, options.rows_per_row_group);
  size_t num_rgs =
      num_rows == 0 ? 0 : (num_rows + rows_per_rg - 1) / rows_per_rg;
  PutVarint64(&directory, num_rgs);
  for (size_t rg = 0; rg < num_rgs; ++rg) {
    size_t begin = rg * rows_per_rg;
    size_t end = std::min(begin + rows_per_rg, num_rows);
    AppendRowGroup(table, begin, end, options, &out, &directory);
  }
  return Finish(std::move(out), directory);
}

std::string WriteColumnFileFromParts(
    const std::vector<ColumnTablePtr>& parts,
    const ColumnFileWriteOptions& options) {
  std::string out;
  std::string directory;
  WriteSchemaHeader(parts.empty() ? Schema() : parts.front()->schema(),
                    &directory);
  PutVarint64(&directory, parts.size());
  for (const ColumnTablePtr& part : parts) {
    AppendRowGroup(*part, 0, part->num_rows(), options, &out, &directory);
  }
  return Finish(std::move(out), directory);
}

Result<std::unique_ptr<ColumnFileReader>> ColumnFileReader::Open(
    std::shared_ptr<RandomReader> source) {
  MODULARIS_ASSIGN_OR_RETURN(size_t file_size, source->Size());
  if (file_size < 16) return Status::InvalidArgument("not a ColumnFile");
  MODULARIS_ASSIGN_OR_RETURN(std::string footer,
                             source->ReadAt(file_size - 16, 16));
  uint64_t dir_offset = GetFixed<uint64_t>(footer.data());
  uint32_t dir_size = GetFixed<uint32_t>(footer.data() + 8);
  uint32_t magic = GetFixed<uint32_t>(footer.data() + 12);
  if (magic != kMagic) return Status::InvalidArgument("bad ColumnFile magic");
  if (dir_offset + dir_size + 16 != file_size) {
    return Status::InvalidArgument("corrupt ColumnFile directory");
  }
  MODULARIS_ASSIGN_OR_RETURN(std::string dir,
                             source->ReadAt(dir_offset, dir_size));

  auto reader = std::unique_ptr<ColumnFileReader>(new ColumnFileReader());
  reader->source_ = std::move(source);

  const char* p = dir.data();
  const char* end = dir.data() + dir.size();
  auto read_varint = [&](uint64_t* v) -> Status {
    if (!GetVarint64(&p, end, v)) {
      return Status::InvalidArgument("truncated ColumnFile directory");
    }
    return Status::OK();
  };

  uint64_t num_fields;
  MODULARIS_RETURN_NOT_OK(read_varint(&num_fields));
  std::vector<Field> fields;
  for (uint64_t f = 0; f < num_fields; ++f) {
    uint64_t name_len;
    MODULARIS_RETURN_NOT_OK(read_varint(&name_len));
    if (p + name_len + 1 > end) {
      return Status::InvalidArgument("truncated ColumnFile schema");
    }
    std::string name(p, name_len);
    p += name_len;
    AtomType type = static_cast<AtomType>(*p++);
    uint64_t width;
    MODULARIS_RETURN_NOT_OK(read_varint(&width));
    fields.push_back(Field{std::move(name), type,
                           static_cast<uint32_t>(width)});
  }
  reader->schema_ = Schema(std::move(fields));

  uint64_t num_rgs;
  MODULARIS_RETURN_NOT_OK(read_varint(&num_rgs));
  for (uint64_t rg = 0; rg < num_rgs; ++rg) {
    RowGroup group;
    MODULARIS_RETURN_NOT_OK(read_varint(&group.num_rows));
    for (uint64_t c = 0; c < num_fields; ++c) {
      Chunk chunk;
      MODULARIS_RETURN_NOT_OK(read_varint(&chunk.offset));
      MODULARIS_RETURN_NOT_OK(read_varint(&chunk.size));
      if (p + 2 + 16 > end) {
        return Status::InvalidArgument("truncated ColumnFile chunk meta");
      }
      chunk.encoding = static_cast<Encoding>(*p++);
      chunk.stats.valid = *p++ != 0;
      chunk.stats.min = GetFixed<int64_t>(p);
      p += 8;
      chunk.stats.max = GetFixed<int64_t>(p);
      p += 8;
      group.chunks.push_back(chunk);
    }
    reader->row_groups_.push_back(std::move(group));
  }
  return reader;
}

size_t ColumnFileReader::total_rows() const {
  size_t n = 0;
  for (const RowGroup& rg : row_groups_) n += rg.num_rows;
  return n;
}

Result<ColumnTablePtr> ColumnFileReader::ReadRowGroup(
    size_t rg, const std::vector<int>& columns) const {
  if (rg >= row_groups_.size()) {
    return Status::OutOfRange("row group out of range");
  }
  const RowGroup& group = row_groups_[rg];

  std::vector<int> cols = columns;
  if (cols.empty()) {
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      cols.push_back(static_cast<int>(c));
    }
  }
  Schema out_schema = schema_.Select(cols);
  ColumnTablePtr table = ColumnTable::Make(out_schema);

  for (size_t oc = 0; oc < cols.size(); ++oc) {
    const Chunk& chunk = group.chunks[cols[oc]];
    MODULARIS_ASSIGN_OR_RETURN(std::string data,
                               source_->ReadAt(chunk.offset, chunk.size));
    const char* p = data.data();
    const char* end = data.data() + data.size();
    Column& col = table->column(oc);
    const AtomType type = out_schema.field(oc).type;

    switch (chunk.encoding) {
      case Encoding::kForVarint: {
        if (data.size() < 8) {
          return Status::InvalidArgument("truncated FOR chunk");
        }
        int64_t base = GetFixed<int64_t>(p);
        p += 8;
        for (uint64_t i = 0; i < group.num_rows; ++i) {
          uint64_t delta;
          if (!GetVarint64(&p, end, &delta)) {
            return Status::InvalidArgument("truncated FOR chunk payload");
          }
          int64_t v = base + static_cast<int64_t>(delta);
          if (type == AtomType::kInt64) {
            col.AppendInt64(v);
          } else {
            col.AppendInt32(static_cast<int32_t>(v));
          }
        }
        break;
      }
      case Encoding::kPlain: {
        if (type == AtomType::kFloat64) {
          for (uint64_t i = 0; i < group.num_rows; ++i) {
            col.AppendFloat64(GetFixed<double>(p));
            p += 8;
          }
        } else if (type == AtomType::kString) {
          for (uint64_t i = 0; i < group.num_rows; ++i) {
            uint64_t len;
            if (!GetVarint64(&p, end, &len) || p + len > end) {
              return Status::InvalidArgument("truncated string chunk");
            }
            col.AppendString(std::string_view(p, len));
            p += len;
          }
        } else {
          return Status::InvalidArgument("unexpected plain chunk type");
        }
        break;
      }
      case Encoding::kDict: {
        uint64_t dict_size;
        if (!GetVarint64(&p, end, &dict_size)) {
          return Status::InvalidArgument("truncated dict header");
        }
        std::vector<std::string_view> dict(dict_size);
        for (uint64_t d = 0; d < dict_size; ++d) {
          uint64_t len;
          if (!GetVarint64(&p, end, &len) || p + len > end) {
            return Status::InvalidArgument("truncated dict entry");
          }
          dict[d] = std::string_view(p, len);
          p += len;
        }
        for (uint64_t i = 0; i < group.num_rows; ++i) {
          uint64_t code;
          if (!GetVarint64(&p, end, &code) || code >= dict.size()) {
            return Status::InvalidArgument("bad dict code");
          }
          col.AppendString(dict[code]);
        }
        break;
      }
    }
  }
  table->FinishBulkLoad();
  return table;
}

}  // namespace modularis::storage
