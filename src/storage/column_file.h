#ifndef MODULARIS_STORAGE_COLUMN_FILE_H_
#define MODULARIS_STORAGE_COLUMN_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/column_table.h"
#include "core/status.h"
#include "storage/blob_store.h"

/// \file column_file.h
/// ColumnFile (.mcf) — the Parquet substitute (DESIGN.md §1): a columnar
/// container with row groups, per-chunk encodings (plain / frame-of-
/// reference varint / dictionary), per-chunk min-max statistics, and a
/// directory footer enabling projection pushdown and row-group range reads.
/// These are exactly the two properties the paper credits the ParquetScan
/// operator with (§5.1.2: "reads data in compressed format and also pushes
/// down projections") plus the row-group addressing the Lambada exchange's
/// write-combining needs (§4.4).
///
/// Layout: [rg0 chunks][rg1 chunks]...[directory][footer]
///   footer: u64 directory offset, u32 directory size, u32 magic.

namespace modularis::storage {

/// Chunk encodings.
enum class Encoding : uint8_t {
  kPlain = 0,
  /// Integers: 8-byte frame-of-reference base followed by varint deltas.
  kForVarint = 1,
  /// Strings: dictionary + varint codes (chosen for low-cardinality cols).
  kDict = 2,
};

struct ColumnFileWriteOptions {
  size_t rows_per_row_group = 64 * 1024;
  /// Max distinct values before a string column falls back to plain.
  size_t dict_threshold = 4096;
};

/// Serializes a table into the ColumnFile format.
std::string WriteColumnFile(const ColumnTable& table,
                            const ColumnFileWriteOptions& options = {});

/// Serializes one file with exactly one row group per part (parts may be
/// empty). This is the layout of the Lambada write-combining exchange
/// (§4.4): one object per sender containing one row group per receiver.
std::string WriteColumnFileFromParts(
    const std::vector<ColumnTablePtr>& parts,
    const ColumnFileWriteOptions& options = {});

/// Random-access byte source abstraction (in-memory blob, object store).
class RandomReader {
 public:
  virtual ~RandomReader() = default;
  virtual Result<std::string> ReadAt(size_t offset, size_t len) const = 0;
  virtual Result<size_t> Size() const = 0;
};

/// RandomReader over an owned string.
class StringReader : public RandomReader {
 public:
  explicit StringReader(std::string data) : data_(std::move(data)) {}
  Result<std::string> ReadAt(size_t offset, size_t len) const override {
    if (offset > data_.size()) return Status::OutOfRange("read past end");
    return data_.substr(offset, len);
  }
  Result<size_t> Size() const override { return data_.size(); }

 private:
  std::string data_;
};

/// RandomReader issuing ranged GETs through a BlobClient (S3/NFS profile);
/// every ReadAt is one charged request, so projection pushdown genuinely
/// saves modelled IO. Transient failures retry under the shared
/// RetryPolicy (core/fault.h); a missing object is kNotFound and fails
/// fast instead of burning the backoff budget.
class BlobReader : public RandomReader {
 public:
  BlobReader(BlobClient* client, std::string key, RetryPolicy retry = {},
             StatsRegistry* stats = nullptr,
             const CancellationToken* cancel = nullptr)
      : client_(client),
        key_(std::move(key)),
        retry_(retry),
        stats_(stats),
        cancel_(cancel) {}
  Result<std::string> ReadAt(size_t offset, size_t len) const override {
    return RetryCall(
        retry_, stats_, "blob.get_range",
        [&] { return client_->GetRange(key_, offset, len); }, cancel_);
  }
  Result<size_t> Size() const override {
    return RetryCall(
        retry_, stats_, "blob.head", [&] { return client_->Head(key_); },
        cancel_);
  }

 private:
  BlobClient* client_;
  std::string key_;
  RetryPolicy retry_;
  StatsRegistry* stats_;
  const CancellationToken* cancel_;
};

/// Reader with projection pushdown and min-max chunk pruning.
class ColumnFileReader {
 public:
  /// Parses the footer + directory.
  static Result<std::unique_ptr<ColumnFileReader>> Open(
      std::shared_ptr<RandomReader> source);

  const Schema& schema() const { return schema_; }
  size_t num_row_groups() const { return row_groups_.size(); }
  size_t row_group_rows(size_t rg) const { return row_groups_[rg].num_rows; }
  size_t total_rows() const;

  /// Min-max statistics of an integer/date chunk; invalid for other types.
  struct ChunkStats {
    bool valid = false;
    int64_t min = 0;
    int64_t max = 0;
  };
  ChunkStats stats(size_t rg, int col) const {
    return row_groups_[rg].chunks[col].stats;
  }

  /// True if chunk [rg, col] may contain a value in [lo, hi].
  bool MayContain(size_t rg, int col, int64_t lo, int64_t hi) const {
    const ChunkStats& s = row_groups_[rg].chunks[col].stats;
    if (!s.valid) return true;
    return !(hi < s.min || lo > s.max);
  }

  /// Reads one row group; `columns` selects a projection (empty = all).
  /// The returned table's schema contains only the selected columns.
  Result<ColumnTablePtr> ReadRowGroup(size_t rg,
                                      const std::vector<int>& columns) const;

 private:
  struct Chunk {
    uint64_t offset = 0;
    uint64_t size = 0;
    Encoding encoding = Encoding::kPlain;
    ChunkStats stats;
  };
  struct RowGroup {
    uint64_t num_rows = 0;
    std::vector<Chunk> chunks;
  };

  std::shared_ptr<RandomReader> source_;
  Schema schema_;
  std::vector<RowGroup> row_groups_;
};

}  // namespace modularis::storage

#endif  // MODULARIS_STORAGE_COLUMN_FILE_H_
