#ifndef MODULARIS_STORAGE_CSV_H_
#define MODULARIS_STORAGE_CSV_H_

#include <string>
#include <string_view>

#include "core/column_table.h"
#include "core/status.h"

/// \file csv.h
/// Minimal CSV codec: the wire format S3Select returns (paper §4.5 — the
/// service "returns chunks of uncompressed CSV data", which is exactly why
/// S3SelectScan loses to ParquetScan in Fig. 8).
/// Dialect: comma separator, '\n' rows, no quoting (TPC-H data contains
/// neither commas nor newlines); dates as YYYY-MM-DD.

namespace modularis::storage {

/// Serializes a table to CSV (no header row).
std::string WriteCsv(const ColumnTable& table);

/// Parses CSV text into a table of the given schema.
Result<ColumnTablePtr> ReadCsv(std::string_view text, const Schema& schema);

}  // namespace modularis::storage

#endif  // MODULARIS_STORAGE_CSV_H_
