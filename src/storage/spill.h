#ifndef MODULARIS_STORAGE_SPILL_H_
#define MODULARIS_STORAGE_SPILL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/exec_context.h"
#include "core/row_vector.h"
#include "core/status.h"
#include "storage/blob_store.h"

/// \file spill.h
/// Spill-file layer for the blocking operators' graceful-degradation
/// paths (docs/DESIGN-memory.md). A SpillSet is one operator instance's
/// collection of spilled partition chunks / sort runs in the blob store:
///
///   spill/<op>-r<rank>-<seq>/p<pass>/d<pid>/c<chunk>
///
/// Chunk payload: [u32 n][n * stride packed rows][n * u32 global indices].
/// The index array carries each row's position in the operator's drained
/// input, which is what the deterministic merges (first-occurrence order
/// for ReduceByKey, probe order for BuildProbe, sort tie-break for
/// Sort/TopK) key on to reproduce the in-memory output byte-for-byte.
///
/// Every Put/Get goes through the shared RetryPolicy (core/fault.h) and
/// the spill client's fault injector (ExecOptions::spill_fault), so spill
/// IO participates in the PR 8 transient-failure discipline. The set
/// tracks every key it wrote and deletes them on destruction — including
/// query abort and cancellation unwinds — so no `spill/…` objects outlive
/// their operator.

namespace modularis::storage {

class SpillSet {
 public:
  /// Opens this operator instance's private spill client against
  /// `ctx->spill_store` (the store is thread-safe; clients are not, and
  /// cloned operators inside parallel NestedMap workers each build their
  /// own set). Requires ctx->spill_store != nullptr.
  SpillSet(ExecContext* ctx, const char* op_tag);
  ~SpillSet();
  SpillSet(const SpillSet&) = delete;
  SpillSet& operator=(const SpillSet&) = delete;

  const std::string& prefix() const { return prefix_; }

  /// Allocates the next recursion-pass namespace (pass 0 is the first).
  int NewPass() { return next_pass_++; }

  /// Writes rows [rows, rows + n·stride) and their global indices as the
  /// next chunk of (pass, pid). Retries transient failures; counts
  /// "spill.bytes" and "spill.chunks" on the bound stats registry.
  Status WriteChunk(int pass, int pid, const uint8_t* rows, size_t n,
                    uint32_t stride, const uint32_t* idx);

  int NumChunks(int pass, int pid) const;

  /// Reads chunk `chunk` of (pass, pid), appending its rows into *rows
  /// and its indices into *idx (either may be null to skip).
  Status ReadChunk(int pass, int pid, int chunk, RowVector* rows,
                   std::vector<uint32_t>* idx);

  /// Reads every chunk of (pass, pid) in write order (concatenation
  /// reproduces the partition's rows in global input order).
  Status ReadPartition(int pass, int pid, RowVector* rows,
                       std::vector<uint32_t>* idx);

  /// Deletes chunks of one partition (freed as soon as a recursion pass
  /// has re-scattered it) or everything this set ever wrote. Deletes go
  /// straight to the store — cleanup on an abort path must not throttle,
  /// fail or inject.
  void DeletePartition(int pass, int pid);
  void DeleteAll();

  int64_t bytes_written() const { return bytes_written_; }

 private:
  std::string ChunkKey(int pass, int pid, int chunk) const;

  ExecContext* ctx_;
  std::unique_ptr<BlobClient> client_;
  std::string prefix_;
  int next_pass_ = 0;
  /// Chunks written per (pass, pid); keys are re-derivable from counts.
  std::map<std::pair<int, int>, int> chunk_counts_;
  int64_t bytes_written_ = 0;
};

}  // namespace modularis::storage

#endif  // MODULARIS_STORAGE_SPILL_H_
