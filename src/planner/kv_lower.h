#ifndef MODULARIS_PLANNER_KV_LOWER_H_
#define MODULARIS_PLANNER_KV_LOWER_H_

#include "core/exec_context.h"
#include "planner/logical_plan.h"
#include "plans/common.h"

/// \file kv_lower.h
/// Lowering for the key-value benchmark templates (paper §4.1–§4.3).
///
/// The KV plans differ from the TPC-H lowering (lower.h) in that their
/// exchanges are *explicit* IR nodes: the distinction the paper draws in
/// Fig. 4 — the naive cascade re-shuffles every intermediate, the
/// optimized one shuffles each base relation exactly once — is visible
/// in the logical plan as the presence or absence of an Exchange above
/// the intermediate join. plans/distributed_join.cc, distributed_
/// groupby.cc and join_sequence.cc author these templates declaratively;
/// the validated emission below owns the physical shapes (compressed
/// exchange, nested local partitioning, build-probe chains), with the
/// network exchange triple wired through plans::AddExchangePipelines.
///
/// Accepted template shapes (kv = ⟨key i64, value i64⟩ base relations;
/// table i = parameter-tuple index i):
///
///   join     Project₍₀,₁,₃₎(Join(X(Scan 0), X(Scan 1)))   (inner)
///            Join(X(Scan 0), X(Scan 1))                   (semi/anti)
///   groupby  Aggregate₍key₎(X(Scan 0))  with a single int64 SUM
///   sequence stage j = Project(Join(X(Scan j), probe)) where probe is
///            stage j−1 (optimized) or X(stage j−1) (naive); stage 0 is
///            X(Scan 0)

namespace modularis::planner {

/// Physical knobs of the KV emissions (world size and fabric belong to
/// the executor, not the plan).
struct KvLowerOptions {
  /// §4.1.2 16→8-byte key/value compression in the network exchange.
  bool compress = true;
  ExecOptions exec;
};

/// Output schema of an N-join cascade stage: ⟨key, v0, ..., vN⟩.
Schema KvStageSchema(int num_joins);

/// Lower the pairwise-join template (Fig. 3). Inner joins must carry the
/// ⟨key, value, value_r⟩ projection; semi/anti joins must not.
Result<SubOpPtr> LowerKvJoin(const LogicalPlan& root,
                             const KvLowerOptions& opts);

/// Lower the GROUP BY template (Fig. 5).
Result<SubOpPtr> LowerKvGroupBy(const LogicalPlan& root,
                                const KvLowerOptions& opts);

/// Lower a join-cascade template (Fig. 4). Naive vs optimized is deduced
/// from the template shape (Exchange above intermediates = naive).
Result<SubOpPtr> LowerKvSequence(const LogicalPlan& root,
                                 const KvLowerOptions& opts);

}  // namespace modularis::planner

#endif  // MODULARIS_PLANNER_KV_LOWER_H_
