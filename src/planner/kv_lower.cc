#include "planner/kv_lower.h"

#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "mpi/mpi_ops.h"
#include "suboperators/agg_ops.h"
#include "suboperators/join_ops.h"
#include "suboperators/partition_ops.h"

namespace modularis::planner {
namespace {

using plans::MaybeScan;
using plans::ParamItem;

/// ⟨key, sum⟩ — the GROUP BY template's output.
Schema KvGroupByOutSchema() {
  return Schema({Field::I64("key"), Field::I64("sum")});
}

/// The KV network exchange triple. The cascade variants keep full keys
/// on the wire at every stage; the pairwise join/group-by compress per
/// KvLowerOptions and carry the key-domain width for bit recovery.
std::string AddNetExchange(PipelinePlan* plan, const std::string& base,
                           const std::function<SubOpPtr()>& src,
                           const KvLowerOptions& opts, bool compress,
                           bool carry_domain_bits) {
  plans::ExchangeConfig cfg;
  cfg.transport = plans::ExchangeConfig::Transport::kMpi;
  cfg.fused = opts.exec.enable_fusion;
  cfg.key_col = 0;
  cfg.spec.bits = opts.exec.network_radix_bits;
  cfg.spec.shift = 0;  // hash stays kIdentity — KV keys are pre-mixed
  cfg.compress = compress;
  if (carry_domain_bits) cfg.domain_bits = opts.exec.key_domain_bits;
  cfg.buffer_bytes = opts.exec.exchange_buffer_bytes;
  return plans::AddExchangePipelines(plan, base, src, cfg);
}

// ---------------------------------------------------------------------------
// Pairwise join emission (Fig. 3)
// ---------------------------------------------------------------------------

/// Builds the innermost nested plan (per local-partition pair): hash
/// build-and-probe plus recovery of the compressed key bits.
/// Parameter tuple: ⟨pid, lpid, data_inner, pid, lpid, data_outer⟩.
SubOpPtr BuildProbeNestedPlan(const KvLowerOptions& opts, JoinType join_type,
                              const Schema& part_schema) {
  const bool fused = opts.exec.enable_fusion;
  auto build = MaybeScan(ParamItem(2), fused);
  auto probe = MaybeScan(ParamItem(5), fused);
  const int F = opts.exec.network_radix_bits;
  const int P = opts.exec.key_domain_bits;
  auto bp = std::make_unique<BuildProbe>(
      std::move(build), std::move(probe), part_schema, part_schema,
      /*build_key_col=*/0, /*probe_key_col=*/0, join_type,
      /*key_shift=*/opts.compress ? P : 0);

  SubOpPtr transformed;
  Schema out_schema;
  if (join_type == JoinType::kInner) {
    out_schema = plans::JoinOutSchema();
    if (opts.compress && fused) {
      // Fused form: materialize the compressed pairs once, then recover
      // the key bits in one tight loop (the JIT-inlined UDF analog).
      Schema pair_schema = part_schema.Concat(part_schema);
      auto pairs = std::make_unique<MaterializeRowVector>(std::move(bp),
                                                          pair_schema);
      Schema out = out_schema;
      return plans::CloneSafe(std::make_unique<ParametrizedMap>(
          ParamItem(0), std::move(pairs), out_schema,
          ParametrizedMap::BulkFn(
              [F, P, out](const Tuple& param, const RowVector& in) {
                RowVectorPtr res = RowVector::Make(out);
                res->Reserve(in.size());
                const int64_t pid = param[0].i64();
                const uint32_t stride = in.row_size();
                const uint8_t* p = in.data();
                uint8_t row[24];
                for (size_t i = 0; i < in.size(); ++i, p += stride) {
                  int64_t word, word_r;
                  std::memcpy(&word, p, 8);
                  std::memcpy(&word_r, p + 8, 8);
                  int64_t key, value, key_r, value_r;
                  DecompressKV(word, pid, F, P, &key, &value);
                  DecompressKV(word_r, pid, F, P, &key_r, &value_r);
                  std::memcpy(row, &key, 8);
                  std::memcpy(row + 8, &value, 8);
                  std::memcpy(row + 16, &value_r, 8);
                  res->AppendRaw(row);
                }
                return res;
              })));
    }
    if (opts.compress) {
      // ⟨word, word_r⟩ → ⟨key, value, value_r⟩ given the network pid.
      transformed = plans::CloneSafe(std::make_unique<ParametrizedMap>(
          ParamItem(0), std::move(bp), out_schema,
          [F, P](const Tuple& param, const RowRef& in, RowWriter* w) {
            int64_t pid = param[0].i64();
            int64_t key, value, key_r, value_r;
            DecompressKV(in.GetInt64(0), pid, F, P, &key, &value);
            DecompressKV(in.GetInt64(1), pid, F, P, &key_r, &value_r);
            w->SetInt64(0, key);
            w->SetInt64(1, value);
            w->SetInt64(2, value_r);
          }));
    } else {
      // ⟨key, value, key_r, value_r⟩ → ⟨key, value, value_r⟩.
      transformed = std::make_unique<MapOp>(
          std::move(bp), out_schema,
          std::vector<MapOutput>{MapOutput::Pass(0), MapOutput::Pass(1),
                                 MapOutput::Pass(3)});
    }
  } else {
    // Semi/anti joins emit the surviving probe records.
    out_schema = KeyValueSchema();
    if (opts.compress) {
      transformed = plans::CloneSafe(std::make_unique<ParametrizedMap>(
          ParamItem(0), std::move(bp), out_schema,
          [F, P](const Tuple& param, const RowRef& in, RowWriter* w) {
            int64_t key, value;
            DecompressKV(in.GetInt64(0), param[0].i64(), F, P, &key, &value);
            w->SetInt64(0, key);
            w->SetInt64(1, value);
          }));
    } else {
      transformed = std::make_unique<MapOp>(
          std::move(bp), out_schema,
          std::vector<MapOutput>{MapOutput::Pass(0), MapOutput::Pass(1)});
    }
  }
  return std::make_unique<MaterializeRowVector>(std::move(transformed),
                                                out_schema);
}

/// Builds the first nested plan (per network-partition pair): local
/// histograms + cache-conscious local partitioning on both sides, pid
/// re-attachment, then the inner NestedMap over local-partition pairs.
/// Parameter tuple: ⟨pid_inner, data_inner, pid_outer, data_outer⟩.
SubOpPtr BuildLocalJoinNestedPlan(const KvLowerOptions& opts,
                                  JoinType join_type,
                                  const Schema& part_schema) {
  const bool fused = opts.exec.enable_fusion;
  // The local radix pass consumes the bits just above the network pass:
  // on compressed words the key's high bits sit above the P value bits.
  RadixSpec local_spec;
  local_spec.bits = opts.exec.local_radix_bits;
  local_spec.shift = opts.compress ? opts.exec.key_domain_bits
                                   : opts.exec.network_radix_bits;

  auto plan = std::make_unique<PipelinePlan>();
  const char* lh_names[2] = {"lh_inner", "lh_outer"};
  const char* lp_names[2] = {"lp_inner", "lp_outer"};
  const char* cp_names[2] = {"cp_inner", "cp_outer"};
  for (int side = 0; side < 2; ++side) {
    int pid_item = side * 2;
    int data_item = side * 2 + 1;
    plan->Add(lh_names[side],
              std::make_unique<LocalHistogram>(
                  MaybeScan(ParamItem(data_item), fused), local_spec,
                  /*key_col=*/0, "phase.local_partition"));
    plan->Add(lp_names[side],
              std::make_unique<LocalPartition>(
                  MaybeScan(ParamItem(data_item), fused),
                  plan->MakeRef(lh_names[side]), local_spec, /*key_col=*/0,
                  "phase.local_partition"));
    plan->Add(cp_names[side],
              std::make_unique<CartesianProduct>(
                  ParamItem(pid_item), plan->MakeRef(lp_names[side])));
  }

  auto zip = std::make_unique<Zip>(plan->MakeRef(cp_names[0]),
                                   plan->MakeRef(cp_names[1]));
  auto nested = std::make_unique<NestedMap>(
      std::move(zip), BuildProbeNestedPlan(opts, join_type, part_schema));
  Schema out_schema = join_type == JoinType::kInner ? plans::JoinOutSchema()
                                                    : KeyValueSchema();
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), fused), out_schema));
  return plan;
}

SubOpPtr EmitKvJoin(JoinType join_type, const KvLowerOptions& opts) {
  const bool fused = opts.exec.enable_fusion;
  const Schema part_schema =
      opts.compress ? CompressedSchema() : KeyValueSchema();

  auto plan = std::make_unique<PipelinePlan>();
  const char* bases[2] = {"inner", "outer"};
  std::string mx_names[2];
  for (int side = 0; side < 2; ++side) {
    mx_names[side] = AddNetExchange(
        plan.get(), bases[side], [side]() { return ParamItem(side); }, opts,
        /*compress=*/opts.compress, /*carry_domain_bits=*/true);
  }

  auto zip = std::make_unique<Zip>(plan->MakeRef(mx_names[0]),
                                   plan->MakeRef(mx_names[1]));
  auto nested = std::make_unique<NestedMap>(
      std::move(zip), BuildLocalJoinNestedPlan(opts, join_type, part_schema));
  Schema out_schema = join_type == JoinType::kInner ? plans::JoinOutSchema()
                                                    : KeyValueSchema();
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), fused), out_schema));
  return plan;
}

// ---------------------------------------------------------------------------
// GROUP BY emission (Fig. 5)
// ---------------------------------------------------------------------------

/// Innermost nested plan (per local partition): restore full keys, then
/// aggregate. Parameter tuple: ⟨pid, lpid, data⟩.
SubOpPtr BuildAggregateNestedPlan(const KvLowerOptions& opts) {
  const bool fused = opts.exec.enable_fusion;
  const int F = opts.exec.network_radix_bits;
  const int P = opts.exec.key_domain_bits;

  SubOpPtr records;
  if (opts.compress && fused) {
    // Fused form: restore the keys of the whole partition in one tight
    // loop (the JIT-inlined UDF analog).
    records = plans::CloneSafe(std::make_unique<ParametrizedMap>(
        ParamItem(0), ParamItem(2), KeyValueSchema(),
        ParametrizedMap::BulkFn(
            [F, P](const Tuple& param, const RowVector& in) {
              RowVectorPtr res = RowVector::Make(KeyValueSchema());
              res->Reserve(in.size());
              const int64_t pid = param[0].i64();
              const uint32_t stride = in.row_size();
              const uint8_t* p = in.data();
              uint8_t row[16];
              for (size_t i = 0; i < in.size(); ++i, p += stride) {
                int64_t word;
                std::memcpy(&word, p, 8);
                int64_t key, value;
                DecompressKV(word, pid, F, P, &key, &value);
                std::memcpy(row, &key, 8);
                std::memcpy(row + 8, &value, 8);
                res->AppendRaw(row);
              }
              return res;
            })));
  } else if (opts.compress) {
    // Restore the full keys before the ReduceByKey (paper §4.3: unlike the
    // join, recovery happens before the aggregation).
    records = plans::CloneSafe(std::make_unique<ParametrizedMap>(
        ParamItem(0), MaybeScan(ParamItem(2), fused), KeyValueSchema(),
        [F, P](const Tuple& param, const RowRef& in, RowWriter* w) {
          int64_t key, value;
          DecompressKV(in.GetInt64(0), param[0].i64(), F, P, &key, &value);
          w->SetInt64(0, key);
          w->SetInt64(1, value);
        }));
  } else {
    records = MaybeScan(ParamItem(2), fused);
  }

  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kSum, ex::Col(1), "sum", AtomType::kInt64});
  auto rk = std::make_unique<ReduceByKey>(std::move(records),
                                          std::vector<int>{0}, std::move(aggs),
                                          KeyValueSchema());
  return std::make_unique<MaterializeRowVector>(std::move(rk),
                                                KvGroupByOutSchema());
}

/// Per network-partition nested plan. Parameter tuple: ⟨pid, data⟩.
SubOpPtr BuildLocalGroupNestedPlan(const KvLowerOptions& opts) {
  const bool fused = opts.exec.enable_fusion;
  RadixSpec local_spec;
  local_spec.bits = opts.exec.local_radix_bits;
  local_spec.shift = opts.compress ? opts.exec.key_domain_bits
                                   : opts.exec.network_radix_bits;

  auto plan = std::make_unique<PipelinePlan>();
  plan->Add("lh", std::make_unique<LocalHistogram>(
                      MaybeScan(ParamItem(1), fused), local_spec,
                      /*key_col=*/0, "phase.local_partition"));
  plan->Add("lp", std::make_unique<LocalPartition>(
                      MaybeScan(ParamItem(1), fused), plan->MakeRef("lh"),
                      local_spec, /*key_col=*/0, "phase.local_partition"));
  plan->Add("cp", std::make_unique<CartesianProduct>(ParamItem(0),
                                                     plan->MakeRef("lp")));

  auto nested = std::make_unique<NestedMap>(plan->MakeRef("cp"),
                                            BuildAggregateNestedPlan(opts));
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), fused), KvGroupByOutSchema()));
  return plan;
}

SubOpPtr EmitKvGroupBy(const KvLowerOptions& opts) {
  const bool fused = opts.exec.enable_fusion;
  auto plan = std::make_unique<PipelinePlan>();
  std::string mx = AddNetExchange(
      plan.get(), "data", []() { return ParamItem(0); }, opts,
      /*compress=*/opts.compress, /*carry_domain_bits=*/true);

  auto nested = std::make_unique<NestedMap>(plan->MakeRef(mx),
                                            BuildLocalGroupNestedPlan(opts));
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), fused), KvGroupByOutSchema()));
  return plan;
}

// ---------------------------------------------------------------------------
// Join-cascade emission (Fig. 4)
// ---------------------------------------------------------------------------

/// Prune map after BuildProbe(build = R_j kv16, probe = S_{j-1} stream):
/// BP output = ⟨key, vj⟩ ⊕ ⟨key_p, v0..v_{j-1}⟩ → S_j = ⟨key, v0..vj⟩.
std::vector<MapOutput> PruneOutputs(int j) {
  std::vector<MapOutput> outs;
  outs.push_back(MapOutput::Pass(0));                   // key
  for (int i = 0; i < j; ++i) {
    outs.push_back(MapOutput::Pass(3 + i));             // v0..v_{j-1}
  }
  outs.push_back(MapOutput::Pass(1));                   // vj
  return outs;
}

/// Per network-partition nested plan of one *naive* stage: local-partition
/// both sides, then build-probe per local partition pair and prune.
/// Parameter tuple: ⟨pid_L, data_L, pid_R, data_R⟩ where L = S_{j-1}
/// (probe side) and R = relation j (build side).
SubOpPtr NaiveStageLocalPlan(int j, const KvLowerOptions& opts) {
  const bool fused = opts.exec.enable_fusion;
  RadixSpec local_spec;
  local_spec.bits = opts.exec.local_radix_bits;
  local_spec.shift = opts.exec.network_radix_bits;
  const Schema left_schema = KvStageSchema(j - 1);  // probe
  const Schema right_schema = KeyValueSchema();     // build
  const Schema out_schema = KvStageSchema(j);

  auto plan = std::make_unique<PipelinePlan>();
  for (int side = 0; side < 2; ++side) {
    std::string suffix = side == 0 ? "_l" : "_r";
    int data_item = side * 2 + 1;
    plan->Add("lh" + suffix,
              std::make_unique<LocalHistogram>(
                  MaybeScan(ParamItem(data_item), fused), local_spec, 0,
                  "phase.local_partition"));
    plan->Add("lp" + suffix,
              std::make_unique<LocalPartition>(
                  MaybeScan(ParamItem(data_item), fused),
                  plan->MakeRef("lh" + suffix), local_spec, 0,
                  "phase.local_partition"));
  }

  // Inner nested plan per local-partition pair:
  // param ⟨lpid_l, data_l, lpid_r, data_r⟩.
  auto inner = [&]() -> SubOpPtr {
    auto build = MaybeScan(ParamItem(3), fused);
    auto probe = MaybeScan(ParamItem(1), fused);
    auto bp = std::make_unique<BuildProbe>(
        std::move(build), std::move(probe), right_schema, left_schema, 0, 0);
    auto pruned = std::make_unique<MapOp>(std::move(bp), out_schema,
                                          PruneOutputs(j));
    return std::make_unique<MaterializeRowVector>(std::move(pruned),
                                                  out_schema);
  }();

  auto zip = std::make_unique<Zip>(plan->MakeRef("lp_l"),
                                   plan->MakeRef("lp_r"));
  auto nested = std::make_unique<NestedMap>(std::move(zip), std::move(inner));
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), fused), out_schema));
  return plan;
}

SubOpPtr EmitNaiveSequence(int num_joins, const KvLowerOptions& opts) {
  auto plan = std::make_unique<PipelinePlan>();
  // Stage j joins S_{j-1} (previous output, re-shuffled!) with R_j.
  for (int j = 1; j <= num_joins; ++j) {
    std::string sj = std::to_string(j);
    PipelinePlan* p = plan.get();
    auto left_src = [p, j]() -> SubOpPtr {
      if (j == 1) return ParamItem(0);
      return p->MakeRef("out_" + std::to_string(j - 1));
    };
    auto right_src = [j]() -> SubOpPtr { return ParamItem(j); };
    std::string mx_l = AddNetExchange(p, "l" + sj, left_src, opts,
                                      /*compress=*/false,
                                      /*carry_domain_bits=*/false);
    std::string mx_r = AddNetExchange(p, "r" + sj, right_src, opts,
                                      /*compress=*/false,
                                      /*carry_domain_bits=*/false);
    auto zip = std::make_unique<Zip>(plan->MakeRef(mx_l),
                                     plan->MakeRef(mx_r));
    auto nested = std::make_unique<NestedMap>(std::move(zip),
                                              NaiveStageLocalPlan(j, opts));
    plan->Add("out_" + sj,
              std::make_unique<MaterializeRowVector>(
                  MaybeScan(std::move(nested), opts.exec.enable_fusion),
                  KvStageSchema(j)));
  }
  plan->SetOutput(plan->MakeRef("out_" + std::to_string(num_joins)));
  return plan;
}

/// Optimized variant: the whole cascade inside one network partition.
/// Parameter tuple: ⟨pid_0, data_0, pid_1, data_1, ..., pid_N, data_N⟩.
SubOpPtr OptimizedLocalPlan(int num_joins, const KvLowerOptions& opts) {
  const bool fused = opts.exec.enable_fusion;
  RadixSpec local_spec;
  local_spec.bits = opts.exec.local_radix_bits;
  local_spec.shift = opts.exec.network_radix_bits;

  auto plan = std::make_unique<PipelinePlan>();
  for (int i = 0; i <= num_joins; ++i) {
    std::string si = std::to_string(i);
    int data_item = 2 * i + 1;
    plan->Add("lh_" + si, std::make_unique<LocalHistogram>(
                              MaybeScan(ParamItem(data_item), fused),
                              local_spec, 0, "phase.local_partition"));
    plan->Add("lp_" + si, std::make_unique<LocalPartition>(
                              MaybeScan(ParamItem(data_item), fused),
                              plan->MakeRef("lh_" + si), local_spec, 0,
                              "phase.local_partition"));
  }

  // Inner nested plan per local-partition tuple:
  // param ⟨lpid_0, data_0, ..., lpid_N, data_N⟩ — a chain of BuildProbes,
  // the output of the (j−1)-th streaming into the j-th (paper §4.2).
  auto inner = [&]() -> SubOpPtr {
    SubOpPtr stream = MaybeScan(ParamItem(1), fused);  // S_0 records
    for (int j = 1; j <= num_joins; ++j) {
      auto build = MaybeScan(ParamItem(2 * j + 1), fused);
      auto bp = std::make_unique<BuildProbe>(
          std::move(build), std::move(stream), KeyValueSchema(),
          KvStageSchema(j - 1), 0, 0);
      stream = std::make_unique<MapOp>(std::move(bp), KvStageSchema(j),
                                       PruneOutputs(j));
    }
    return std::make_unique<MaterializeRowVector>(std::move(stream),
                                                  KvStageSchema(num_joins));
  }();

  // Zip all local partition streams into one aligned tuple stream.
  SubOpPtr zipped = plan->MakeRef("lp_0");
  for (int i = 1; i <= num_joins; ++i) {
    zipped = std::make_unique<Zip>(std::move(zipped),
                                   plan->MakeRef("lp_" + std::to_string(i)));
  }
  auto nested = std::make_unique<NestedMap>(std::move(zipped),
                                            std::move(inner));
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), fused), KvStageSchema(num_joins)));
  return plan;
}

SubOpPtr EmitOptimizedSequence(int num_joins, const KvLowerOptions& opts) {
  auto plan = std::make_unique<PipelinePlan>();
  // Network-partition all N+1 relations once (Fig. 4, right).
  std::vector<std::string> mx_names;
  for (int i = 0; i <= num_joins; ++i) {
    mx_names.push_back(AddNetExchange(
        plan.get(), "rel" + std::to_string(i),
        [i]() { return ParamItem(i); }, opts, /*compress=*/false,
        /*carry_domain_bits=*/false));
  }
  SubOpPtr zipped = plan->MakeRef(mx_names[0]);
  for (int i = 1; i <= num_joins; ++i) {
    zipped = std::make_unique<Zip>(std::move(zipped),
                                   plan->MakeRef(mx_names[i]));
  }
  auto nested = std::make_unique<NestedMap>(
      std::move(zipped), OptimizedLocalPlan(num_joins, opts));
  plan->SetOutput(std::make_unique<MaterializeRowVector>(
      MaybeScan(std::move(nested), opts.exec.enable_fusion),
      KvStageSchema(num_joins)));
  return plan;
}

// ---------------------------------------------------------------------------
// Template validation
// ---------------------------------------------------------------------------

bool IsKvScan(const LogicalPlan& n, int table) {
  return n.kind == NodeKind::kScan && n.table == table &&
         n.schema.num_fields() == 2 && n.scan_filter == nullptr;
}

/// Exchange-on-key-0 over a kv scan of `table`.
bool IsExchangedKvScan(const LogicalPlan& n, int table) {
  return n.kind == NodeKind::kExchange && n.exchange_key == 0 &&
         IsKvScan(*n.children[0], table);
}

bool IsPassList(const std::vector<MapOutput>& items,
                const std::vector<int>& cols) {
  if (items.size() != cols.size()) return false;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].passthrough_col != cols[i]) return false;
  }
  return true;
}

/// Parses one cascade stage S_j = Project(Join(X(Scan j), probe)) and
/// returns j; flags whether intermediates were re-exchanged (naive).
Result<int> ParseSequenceStage(const LogicalPlan& n, bool* naive,
                               bool* optimized) {
  if (n.kind != NodeKind::kProject ||
      n.children[0]->kind != NodeKind::kJoin) {
    return Status::InvalidArgument(
        "kv sequence template: stage must be Project(Join(...))");
  }
  const LogicalPlan& join = *n.children[0];
  if (join.join_type != JoinType::kInner || join.build_key != 0 ||
      join.probe_key != 0) {
    return Status::InvalidArgument(
        "kv sequence template: stages are inner joins on column 0");
  }
  const LogicalPlan& build = *join.children[0];
  if (build.kind != NodeKind::kExchange || build.exchange_key != 0 ||
      build.children[0]->kind != NodeKind::kScan) {
    return Status::InvalidArgument(
        "kv sequence template: build side must be an exchanged base scan");
  }
  const int j = build.children[0]->table;
  if (j < 1 || !IsKvScan(*build.children[0], j)) {
    return Status::InvalidArgument(
        "kv sequence template: stage j must build on kv relation j");
  }
  // Expected prune projection {0, 3..3+j-1, 1} (see PruneOutputs).
  std::vector<int> expect;
  expect.push_back(0);
  for (int i = 0; i < j; ++i) expect.push_back(3 + i);
  expect.push_back(1);
  if (!IsPassList(n.projections, expect)) {
    return Status::InvalidArgument(
        "kv sequence template: stage projection must prune to "
        "⟨key, v0..vj⟩");
  }

  const LogicalPlan& probe = *join.children[1];
  Result<int> below = 0;
  if (probe.kind == NodeKind::kExchange && probe.exchange_key == 0) {
    const LogicalPlan& src = *probe.children[0];
    if (src.kind == NodeKind::kScan) {
      if (!IsKvScan(src, 0)) {
        return Status::InvalidArgument(
            "kv sequence template: the cascade starts at kv relation 0");
      }
      below = 0;
    } else {
      *naive = true;  // the intermediate crosses the network again
      below = ParseSequenceStage(src, naive, optimized);
    }
  } else {
    *optimized = true;  // co-partitioned: intermediate consumed in place
    below = ParseSequenceStage(probe, naive, optimized);
  }
  if (!below.ok()) return below.status();
  if (below.value() != j - 1) {
    return Status::InvalidArgument(
        "kv sequence template: stage j must probe stage j-1");
  }
  return j;
}

}  // namespace

Schema KvStageSchema(int num_joins) {
  std::vector<Field> fields;
  fields.push_back(Field::I64("key"));
  for (int i = 0; i <= num_joins; ++i) {
    fields.push_back(Field::I64("v" + std::to_string(i)));
  }
  return Schema(std::move(fields));
}

Result<SubOpPtr> LowerKvJoin(const LogicalPlan& root,
                             const KvLowerOptions& opts) {
  const LogicalPlan* join = &root;
  if (root.kind == NodeKind::kProject) {
    if (root.children[0]->kind != NodeKind::kJoin) {
      return Status::InvalidArgument(
          "kv join template: Project must sit directly on the Join");
    }
    join = root.children[0].get();
    if (join->join_type != JoinType::kInner) {
      return Status::InvalidArgument(
          "kv join template: only inner joins project ⟨key, value, "
          "value_r⟩ (semi/anti emit the probe records as-is)");
    }
    if (!IsPassList(root.projections, {0, 1, 3})) {
      return Status::InvalidArgument(
          "kv join template: inner-join projection must be ⟨key, value, "
          "value_r⟩ = passes {0, 1, 3}");
    }
  } else if (root.kind == NodeKind::kJoin) {
    if (root.join_type == JoinType::kInner) {
      return Status::InvalidArgument(
          "kv join template: inner joins must carry the ⟨key, value, "
          "value_r⟩ projection");
    }
  } else {
    return Status::InvalidArgument(
        "kv join template: expected Join or Project(Join)");
  }
  if (join->build_key != 0 || join->probe_key != 0 ||
      !IsExchangedKvScan(*join->children[0], 0) ||
      !IsExchangedKvScan(*join->children[1], 1)) {
    return Status::InvalidArgument(
        "kv join template: expected Join on key 0 over exchanged kv "
        "scans of relations 0 and 1");
  }
  return EmitKvJoin(join->join_type, opts);
}

Result<SubOpPtr> LowerKvGroupBy(const LogicalPlan& root,
                                const KvLowerOptions& opts) {
  if (root.kind != NodeKind::kAggregate ||
      root.group_keys != std::vector<int>{0} || root.aggs.size() != 1 ||
      root.aggs[0].kind != AggKind::kSum ||
      root.aggs[0].out_type != AtomType::kInt64 ||
      root.aggs[0].input == nullptr ||
      root.aggs[0].input->AsColumnIndex() != 1 || root.having != nullptr ||
      !IsExchangedKvScan(*root.children[0], 0)) {
    return Status::InvalidArgument(
        "kv groupby template: expected SUM(value) GROUP BY key over an "
        "exchanged kv scan of relation 0");
  }
  return EmitKvGroupBy(opts);
}

Result<SubOpPtr> LowerKvSequence(const LogicalPlan& root,
                                 const KvLowerOptions& opts) {
  bool naive = false;
  bool optimized = false;
  auto stages = ParseSequenceStage(root, &naive, &optimized);
  if (!stages.ok()) return stages.status();
  if (naive && optimized) {
    return Status::InvalidArgument(
        "kv sequence template: mixed naive/optimized stages");
  }
  return naive ? EmitNaiveSequence(stages.value(), opts)
               : EmitOptimizedSequence(stages.value(), opts);
}

}  // namespace modularis::planner
