#include "planner/lower.h"

#include <chrono>
#include <numeric>
#include <utility>

#include "mpi/mpi_ops.h"
#include "serverless/serverless_ops.h"
#include "suboperators/agg_ops.h"
#include "suboperators/join_ops.h"

namespace modularis::planner {
namespace {

using plans::MaybeScan;
using plans::ParamItem;

int Log2Exact(int v) {
  int bits = 0;
  while ((1 << bits) < v) ++bits;
  return bits;
}

/// Pipeline names are cosmetic but must be unique within the plan.
std::string AllocName(LoweringContext* ctx, const std::string& base) {
  int n = ++ctx->used_names[base];
  return n == 1 ? base : base + "_" + std::to_string(n);
}

/// Adds pipeline `name` yielding this rank's filtered + pruned shard of
/// the scanned table — the only plan fragment that differs per scan leaf
/// (Figs. 6/7).
void AddScan(PipelinePlan* plan, const std::string& name,
             const LogicalPlan& n, const LoweringContext& ctx) {
  const Schema& pruned = n.schema;
  SubOpPtr rows;
  switch (ctx.scan_leaf) {
    case ScanLeafKind::kMemoryRows: {
      // In-memory base table fragment: prune + filter record-wise.
      std::vector<MapOutput> prune;
      prune.reserve(n.scan_cols.size());
      for (int c : n.scan_cols) prune.push_back(MapOutput::Pass(c));
      rows = std::make_unique<MapOp>(
          std::make_unique<RowScan>(ParamItem(n.table)), pruned,
          std::move(prune));
      break;
    }
    case ScanLeafKind::kColumnFile: {
      // ColumnFile on NFS/S3: projection + range pushdown in the scan.
      ColumnFileScan::Options copts;
      copts.projection = n.scan_cols;
      copts.ranges = n.scan_ranges;
      rows = std::make_unique<ColumnScan>(
          std::make_unique<ColumnFileScan>(ParamItem(n.table), copts),
          pruned);
      break;
    }
    case ScanLeafKind::kS3Select: {
      // Smart storage: both projection and selection are pushed into the
      // storage service; nothing remains to filter here (§4.5).
      S3SelectRequest::Options sopts;
      sopts.object_schema = n.table_schema;
      sopts.projection = n.scan_cols;
      sopts.predicate = n.scan_filter;
      plan->Add(name, std::make_unique<TableToCollection>(
                          std::make_unique<S3SelectRequest>(
                              ParamItem(n.table), std::move(sopts))));
      return;
    }
  }
  if (n.scan_filter != nullptr) {
    rows = std::make_unique<Filter>(std::move(rows), n.scan_filter);
  }
  plan->Add(name, std::make_unique<MaterializeRowVector>(std::move(rows),
                                                         pruned));
}

/// Adds the platform's exchange for pipeline `src` keyed on `key_col`
/// and returns the name of the pipeline yielding the exchanged data:
/// ⟨pid, collection⟩ tuples on MPI/TCP, ⟨path, rg, rg⟩ triples on
/// serverless. The transport wiring itself lives in
/// plans::AddExchangePipelines; this only picks the configuration.
std::string AddExchange(PipelinePlan* plan, LoweringContext* ctx,
                        const std::string& src, int key_col) {
  std::string base = src + "_x" + std::to_string(ctx->next_exchange++);
  plans::ExchangeConfig cfg;
  cfg.fused = ctx->fused;
  cfg.key_col = key_col;
  if (!ctx->serverless && ctx->exec.tcp_exchange) {
    cfg.transport = plans::ExchangeConfig::Transport::kTcp;
  } else if (!ctx->serverless) {
    cfg.transport = plans::ExchangeConfig::Transport::kMpi;
    cfg.spec.bits = ctx->exec.network_radix_bits;
    cfg.spec.shift = 0;
    cfg.spec.hash = RadixHash::kMix;
    cfg.compress = false;
    cfg.buffer_bytes = ctx->exec.exchange_buffer_bytes;
  } else {
    cfg.transport = plans::ExchangeConfig::Transport::kS3;
    cfg.spec.bits = Log2Exact(ctx->world);
    cfg.spec.shift = 0;
    cfg.spec.hash = RadixHash::kMix;
    cfg.prefix = ctx->tag + "/" + base;
    cfg.write_combining = ctx->exec.s3_write_combining;
    cfg.retry = ctx->exec.retry;
  }
  return plans::AddExchangePipelines(
      plan, base, [plan, &src]() { return plan->MakeRef(src); }, cfg);
}

/// Source of exchanged records for one side of a downstream operator.
SubOpPtr ExchangedData(PipelinePlan* plan, const LoweringContext& ctx,
                       const std::string& xpipe, int param_item) {
  if (!ctx.serverless) {
    // Inside a NestedMap over zipped partition pairs: the data collection
    // sits at `param_item` of the parameter tuple.
    return MaybeScan(ParamItem(param_item), ctx.fused);
  }
  // Serverless: read this worker's row groups back from S3.
  ColumnFileScan::Options copts;
  copts.retry = ctx.exec.retry;
  return std::make_unique<TableToCollection>(std::make_unique<ColumnFileScan>(
      plan->MakeRef(xpipe), std::move(copts)));
}

/// Adds a distributed hash join between two materialized pipelines and
/// materializes the (optionally filtered/mapped) join output as pipeline
/// `out_name` with schema `out_schema`.
void AddJoin(PipelinePlan* plan, LoweringContext* ctx,
             const std::string& out_name, const std::string& build_pipe,
             const Schema& build_schema, int build_key,
             const std::string& probe_pipe, const Schema& probe_schema,
             int probe_key, JoinType type, ExprPtr post_filter,
             std::vector<MapOutput> post, const Schema& out_schema,
             bool allow_broadcast) {
  auto finish = [&](SubOpPtr cur) -> SubOpPtr {
    if (post_filter != nullptr) {
      cur = std::make_unique<Filter>(std::move(cur), post_filter);
    }
    if (!post.empty()) {
      cur = std::make_unique<MapOp>(std::move(cur), out_schema,
                                    std::move(post));
    }
    return std::make_unique<MaterializeRowVector>(std::move(cur),
                                                  out_schema);
  };

  if (!ctx->serverless && ctx->exec.broadcast_small_build &&
      allow_broadcast) {
    // Broadcast join: replicate the (small) build side everywhere; the
    // probe side never crosses the network.
    std::string bx =
        build_pipe + "_bcast" + std::to_string(ctx->next_exchange++);
    plan->Add(bx, std::make_unique<MpiBroadcast>(
                      MaybeScan(plan->MakeRef(build_pipe), ctx->fused),
                      build_schema));
    auto bp = std::make_unique<BuildProbe>(
        MaybeScan(plan->MakeRef(bx), ctx->fused),
        MaybeScan(plan->MakeRef(probe_pipe), ctx->fused), build_schema,
        probe_schema, build_key, probe_key, type);
    plan->Add(out_name, finish(std::move(bp)));
    return;
  }

  std::string xb = AddExchange(plan, ctx, build_pipe, build_key);
  std::string xp = AddExchange(plan, ctx, probe_pipe, probe_key);

  if (!ctx->serverless) {
    // NestedMap over zipped ⟨pid, data⟩ pairs (Fig. 6).
    auto nested = finish(std::make_unique<BuildProbe>(
        MaybeScan(ParamItem(1), ctx->fused),
        MaybeScan(ParamItem(3), ctx->fused), build_schema, probe_schema,
        build_key, probe_key, type));
    auto zip = std::make_unique<Zip>(plan->MakeRef(xb), plan->MakeRef(xp));
    auto nm = std::make_unique<NestedMap>(std::move(zip), std::move(nested));
    plan->Add(out_name,
              std::make_unique<MaterializeRowVector>(
                  MaybeScan(std::move(nm), ctx->fused), out_schema));
    return;
  }
  // Serverless: each worker holds exactly one partition after the
  // exchange — no NestedMap (Fig. 7).
  auto bp = std::make_unique<BuildProbe>(
      ExchangedData(plan, *ctx, xb, 1), ExchangedData(plan, *ctx, xp, 3),
      build_schema, probe_schema, build_key, probe_key, type);
  plan->Add(out_name, finish(std::move(bp)));
}

/// Adds a shuffled aggregation: exchange `in_pipe` on `key_col`, then
/// ReduceByKey per partition with an optional HAVING filter.
void AddShuffledAgg(PipelinePlan* plan, LoweringContext* ctx,
                    const std::string& out_name, const std::string& in_pipe,
                    const Schema& in_schema, int key_col,
                    std::vector<int> keys, std::vector<AggSpec> aggs,
                    ExprPtr having, const Schema& out_schema) {
  std::string x = AddExchange(plan, ctx, in_pipe, key_col);

  auto finish = [&](SubOpPtr records) -> SubOpPtr {
    SubOpPtr cur = std::make_unique<ReduceByKey>(
        std::move(records), std::move(keys), std::move(aggs), in_schema);
    if (having != nullptr) {
      cur = std::make_unique<Filter>(std::move(cur), having);
    }
    return std::make_unique<MaterializeRowVector>(std::move(cur),
                                                  out_schema);
  };

  if (!ctx->serverless) {
    auto nested = finish(MaybeScan(ParamItem(1), ctx->fused));
    auto nm =
        std::make_unique<NestedMap>(plan->MakeRef(x), std::move(nested));
    plan->Add(out_name,
              std::make_unique<MaterializeRowVector>(
                  MaybeScan(std::move(nm), ctx->fused), out_schema));
    return;
  }
  plan->Add(out_name, finish(ExchangedData(plan, *ctx, x, 1)));
}

/// Adds a rank-local aggregation over a materialized pipeline.
void AddLocalAgg(PipelinePlan* plan, const LoweringContext& ctx,
                 const std::string& out_name, const std::string& in_pipe,
                 const Schema& in_schema, std::vector<int> keys,
                 std::vector<AggSpec> aggs, const Schema& out_schema) {
  SubOpPtr cur = std::make_unique<ReduceByKey>(
      MaybeScan(plan->MakeRef(in_pipe), ctx.fused), std::move(keys),
      std::move(aggs), in_schema);
  plan->Add(out_name, std::make_unique<MaterializeRowVector>(std::move(cur),
                                                             out_schema));
}

Result<LoweredPlan> LowerNode(const LogicalPlan& n, PipelinePlan* plan,
                              LoweringContext* ctx, bool root);

/// Lowers the Project?(Filter?(Join)) cluster as one distributed join
/// pipeline: the filter becomes the join's post-filter (evaluated on the
/// concatenated build⊕probe record before projection).
Result<LoweredPlan> LowerJoin(const LogicalPlan& join,
                              const LogicalPlan* filt,
                              const LogicalPlan* proj, PipelinePlan* plan,
                              LoweringContext* ctx) {
  auto b = LowerNode(*join.children[0], plan, ctx, /*root=*/false);
  if (!b.ok()) return b.status();
  auto p = LowerNode(*join.children[1], plan, ctx, /*root=*/false);
  if (!p.ok()) return p.status();
  const Schema& out_schema = proj != nullptr ? proj->schema : join.schema;
  std::vector<MapOutput> post;
  if (proj != nullptr) post = proj->projections;
  ExprPtr post_filter = filt != nullptr ? filt->predicate : nullptr;
  std::string name =
      AllocName(ctx, "j" + std::to_string(++ctx->next_join));
  AddJoin(plan, ctx, name, b.value().pipeline, b.value().schema,
          join.build_key, p.value().pipeline, p.value().schema,
          join.probe_key, join.join_type, std::move(post_filter),
          std::move(post), out_schema, join.broadcast_ok);
  return LoweredPlan{name, out_schema};
}

Result<LoweredPlan> LowerNode(const LogicalPlan& n, PipelinePlan* plan,
                              LoweringContext* ctx, bool root) {
  switch (n.kind) {
    case NodeKind::kScan: {
      std::string name = AllocName(
          ctx, n.table_name.empty() ? "scan" : n.table_name);
      AddScan(plan, name, n, *ctx);
      return LoweredPlan{name, n.schema};
    }
    case NodeKind::kFilter:
    case NodeKind::kProject: {
      const LogicalPlan* proj = n.kind == NodeKind::kProject ? &n : nullptr;
      const LogicalPlan* filt = n.kind == NodeKind::kFilter ? &n : nullptr;
      const LogicalPlan* below = n.children[0].get();
      if (proj != nullptr && below->kind == NodeKind::kFilter) {
        filt = below;
        below = filt->children[0].get();
      }
      if (below->kind == NodeKind::kJoin) {
        return LowerJoin(*below, filt, proj, plan, ctx);
      }
      auto child = LowerNode(*below, plan, ctx, /*root=*/false);
      if (!child.ok()) return child.status();
      SubOpPtr cur =
          MaybeScan(plan->MakeRef(child.value().pipeline), ctx->fused);
      if (filt != nullptr) {
        cur = std::make_unique<Filter>(std::move(cur), filt->predicate);
      }
      if (proj != nullptr) {
        cur = std::make_unique<MapOp>(std::move(cur), proj->schema,
                                      proj->projections);
      }
      std::string name = AllocName(
          ctx, std::string(proj != nullptr ? "proj" : "flt") +
                   std::to_string(++ctx->next_misc));
      plan->Add(name, std::make_unique<MaterializeRowVector>(std::move(cur),
                                                             n.schema));
      return LoweredPlan{name, n.schema};
    }
    case NodeKind::kJoin:
      return LowerJoin(n, nullptr, nullptr, plan, ctx);
    case NodeKind::kAggregate: {
      auto child = LowerNode(*n.children[0], plan, ctx, /*root=*/false);
      if (!child.ok()) return child.status();
      if (root) {
        // The rank root aggregates locally; the driver merge re-reduces
        // the partials (SplitAtDriver supplies the merge spec).
        if (n.having != nullptr) {
          return Status::InvalidArgument(
              "lower: HAVING on the rank-root aggregate (rank partials are "
              "incomplete; filter after the driver merge instead)");
        }
        std::string name = AllocName(ctx, "agg");
        AddLocalAgg(plan, *ctx, name, child.value().pipeline,
                    child.value().schema, n.group_keys, n.aggs, n.schema);
        return LoweredPlan{name, n.schema};
      }
      if (n.group_keys.empty()) {
        return Status::InvalidArgument(
            "lower: interior keyless aggregate (only the rank root may "
            "aggregate without keys — the driver merges the scalars)");
      }
      std::string name =
          AllocName(ctx, "agg" + std::to_string(++ctx->next_agg));
      AddShuffledAgg(plan, ctx, name, child.value().pipeline,
                     child.value().schema, n.group_keys[0], n.group_keys,
                     n.aggs, n.having, n.schema);
      return LoweredPlan{name, n.schema};
    }
    case NodeKind::kSort: {
      auto child = LowerNode(*n.children[0], plan, ctx, /*root=*/false);
      if (!child.ok()) return child.status();
      std::string name =
          AllocName(ctx, "sort" + std::to_string(++ctx->next_misc));
      SubOpPtr cur = std::make_unique<SortOp>(
          MaybeScan(plan->MakeRef(child.value().pipeline), ctx->fused),
          n.sort_keys, child.value().schema);
      plan->Add(name, std::make_unique<MaterializeRowVector>(std::move(cur),
                                                             n.schema));
      return LoweredPlan{name, n.schema};
    }
    case NodeKind::kLimit: {
      const LogicalPlan* sort = n.children[0].get();
      if (sort->kind != NodeKind::kSort) {
        return Status::InvalidArgument(
            "lower: LIMIT without ORDER BY has no deterministic result");
      }
      auto child = LowerNode(*sort->children[0], plan, ctx, /*root=*/false);
      if (!child.ok()) return child.status();
      std::string name =
          AllocName(ctx, "topk" + std::to_string(++ctx->next_misc));
      SubOpPtr cur = std::make_unique<TopK>(
          MaybeScan(plan->MakeRef(child.value().pipeline), ctx->fused),
          sort->sort_keys, n.limit, child.value().schema);
      plan->Add(name, std::make_unique<MaterializeRowVector>(std::move(cur),
                                                             n.schema));
      return LoweredPlan{name, n.schema};
    }
    case NodeKind::kExchange:
      return Status::InvalidArgument(
          "lower: bare Exchange nodes appear only in the KV templates "
          "(kv_lower.h); TPC-H exchanges are implied by Join/Aggregate");
  }
  return Status::InvalidArgument("lower: unknown node kind");
}

}  // namespace

Result<LoweredPlan> LowerRankPlan(const LogicalPlan& root, PipelinePlan* plan,
                                  LoweringContext* ctx) {
  const auto start = std::chrono::steady_clock::now();
  auto lowered = LowerNode(root, plan, ctx, /*root=*/true);
  if (ctx->stats != nullptr) {
    ctx->stats->AddTime(
        "planner.time.lower",
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
  }
  return lowered;
}

Result<DriverSpec> SplitAtDriver(LogicalPlanPtr root) {
  DriverSpec spec;
  LogicalPlanPtr cur = std::move(root);
  if (cur->kind == NodeKind::kLimit) {
    spec.limit = cur->limit;
    cur = cur->children[0];
    if (cur->kind != NodeKind::kSort) {
      return Status::InvalidArgument(
          "SplitAtDriver: LIMIT without ORDER BY has no deterministic "
          "result");
    }
  }
  if (cur->kind == NodeKind::kSort) {
    spec.sort = cur->sort_keys;
    cur = cur->children[0];
  }
  if (cur->kind == NodeKind::kProject &&
      cur->children[0]->kind == NodeKind::kAggregate) {
    spec.finalize = cur->projections;
    spec.final_schema = cur->schema;
    cur = cur->children[0];
  }
  if (cur->kind == NodeKind::kAggregate) {
    // The ranks aggregate their shards; the driver re-reduces the
    // partials. Partial SUM/MIN/MAX merge by the same function, partial
    // COUNTs merge by summing.
    spec.merge = true;
    const int nkeys = static_cast<int>(cur->group_keys.size());
    spec.merge_keys.resize(cur->group_keys.size());
    std::iota(spec.merge_keys.begin(), spec.merge_keys.end(), 0);
    for (size_t i = 0; i < cur->aggs.size(); ++i) {
      const AggSpec& a = cur->aggs[i];
      AggSpec m;
      m.kind = a.kind == AggKind::kCount ? AggKind::kSum : a.kind;
      m.input = ex::Col(nkeys + static_cast<int>(i));
      m.name = a.name;
      m.out_type = a.out_type;
      spec.merge_aggs.push_back(std::move(m));
    }
    spec.merge_having = cur->having;
    // The rank subtree keeps the Aggregate node (lowered rank-local);
    // its HAVING moved to the driver, where the groups are complete.
    if (cur->having != nullptr) {
      auto stripped = std::make_shared<LogicalPlan>(*cur);
      stripped->having = nullptr;
      cur = std::move(stripped);
    }
  }
  spec.rank_root = cur;
  spec.rank_schema = cur->schema;
  if (spec.finalize.empty()) spec.final_schema = spec.rank_schema;
  return spec;
}

}  // namespace modularis::planner
