#include "planner/cost.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace modularis::planner {
namespace {

/// Fallback selectivity for predicates the statistics cannot price.
constexpr double kDefaultSel = 1.0 / 3.0;
/// Fallback row count for tables absent from the catalog.
constexpr double kDefaultRows = 1000.0;
/// Fraction of groups assumed to survive a HAVING filter.
constexpr double kHavingSel = 1.0 / 3.0;

const ColumnStats* FindStats(const LogicalPlan& input, int col,
                             const Catalog& catalog) {
  ColumnSite site = ColumnOrigin(input, col);
  if (site.table < 0) return nullptr;
  auto t = catalog.tables.find(site.table);
  if (t == catalog.tables.end()) return nullptr;
  auto c = t->second.columns.find(site.column);
  return c == t->second.columns.end() ? nullptr : &c->second;
}

/// A comparison normalized to column-op-literal form (operator flipped
/// when the literal was on the left).
struct ColCmp {
  int col = -1;
  CmpOp op = CmpOp::kEq;
  bool numeric = false;
  double value = 0;
};

CmpOp Flip(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;
  }
}

bool DecomposeCmp(const Expr& e, ColCmp* out) {
  CmpOp op;
  if (!e.AsCompare(&op) || e.NumExprChildren() != 2) return false;
  ExprPtr lhs = e.ExprChild(0);
  ExprPtr rhs = e.ExprChild(1);
  if (lhs == nullptr || rhs == nullptr) return false;
  int lc = lhs->AsColumnIndex();
  int rc = rhs->AsColumnIndex();
  Item lit;
  if (lc >= 0 && rhs->AsLiteral(&lit)) {
    out->col = lc;
    out->op = op;
  } else if (rc >= 0 && lhs->AsLiteral(&lit)) {
    out->col = rc;
    out->op = Flip(op);
  } else {
    return false;
  }
  out->numeric = lit.is_i64() || lit.is_f64();
  if (out->numeric) {
    out->value = lit.is_i64() ? static_cast<double>(lit.i64()) : lit.f64();
  }
  return true;
}

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

double CmpSelectivity(const ColCmp& cc, const ColumnStats* st) {
  switch (cc.op) {
    case CmpOp::kEq:
      return st != nullptr && st->distinct > 0 ? 1.0 / st->distinct
                                               : kDefaultSel;
    case CmpOp::kNe:
      return st != nullptr && st->distinct > 0 ? 1.0 - 1.0 / st->distinct
                                               : 1.0 - kDefaultSel;
    default:
      break;
  }
  if (cc.numeric && st != nullptr && st->has_range && st->max > st->min) {
    const double width = st->max - st->min;
    const double frac = (cc.op == CmpOp::kLt || cc.op == CmpOp::kLe)
                            ? (cc.value - st->min) / width
                            : (st->max - cc.value) / width;
    return Clamp01(frac);
  }
  return kDefaultSel;
}

double SelImpl(const ExprPtr& e, const LogicalPlan& input,
               const Catalog& catalog);

/// AND of conjuncts with the range conjuncts on one column merged into a
/// single interval first (independence would price a BETWEEN as the
/// product of two half-open ranges, wildly overestimating narrow
/// windows — and with them the build sides of date-filtered joins).
double AndSelectivity(const Expr& e, const LogicalPlan& input,
                      const Catalog& catalog) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  struct Interval {
    double lo = -kInf;
    double hi = kInf;
    const ColumnStats* st = nullptr;
  };
  std::map<int, Interval> intervals;
  double sel = 1.0;
  for (size_t i = 0; i < e.NumExprChildren(); ++i) {
    ExprPtr c = e.ExprChild(i);
    if (c == nullptr) continue;
    ColCmp cc;
    const ColumnStats* st = nullptr;
    const bool ranged =
        c->kind() == ExprKind::kCompare && DecomposeCmp(*c, &cc) &&
        cc.numeric && cc.op != CmpOp::kEq && cc.op != CmpOp::kNe &&
        (st = FindStats(input, cc.col, catalog)) != nullptr && st->has_range &&
        st->max > st->min;
    if (!ranged) {
      sel *= SelImpl(c, input, catalog);
      continue;
    }
    Interval& iv = intervals[cc.col];
    iv.st = st;
    if (cc.op == CmpOp::kLt || cc.op == CmpOp::kLe) {
      iv.hi = std::min(iv.hi, cc.value);
    } else {
      iv.lo = std::max(iv.lo, cc.value);
    }
  }
  for (const auto& [col, iv] : intervals) {
    (void)col;
    const double lo = std::max(iv.lo, iv.st->min);
    const double hi = std::min(iv.hi, iv.st->max);
    sel *= Clamp01((hi - lo) / (iv.st->max - iv.st->min));
  }
  return sel;
}

double SelImpl(const ExprPtr& e, const LogicalPlan& input,
               const Catalog& catalog) {
  if (e == nullptr) return 1.0;
  switch (e->kind()) {
    case ExprKind::kAnd:
      return AndSelectivity(*e, input, catalog);
    case ExprKind::kOr: {
      double none = 1.0;
      for (size_t i = 0; i < e->NumExprChildren(); ++i) {
        none *= 1.0 - SelImpl(e->ExprChild(i), input, catalog);
      }
      return 1.0 - none;
    }
    case ExprKind::kNot:
      return 1.0 - SelImpl(e->ExprChild(0), input, catalog);
    case ExprKind::kCompare: {
      ColCmp cc;
      if (!DecomposeCmp(*e, &cc)) return kDefaultSel;
      return CmpSelectivity(cc, FindStats(input, cc.col, catalog));
    }
    case ExprKind::kInStr:
    case ExprKind::kInInt: {
      const double n = static_cast<double>(e->InListSize());
      ExprPtr in = e->ExprChild(0);
      const int col = in != nullptr ? in->AsColumnIndex() : -1;
      const ColumnStats* st =
          col >= 0 ? FindStats(input, col, catalog) : nullptr;
      if (st != nullptr && st->distinct > 0) return Clamp01(n / st->distinct);
      return Clamp01(n * 0.1);
    }
    case ExprKind::kLike:
      return 0.1;
    case ExprKind::kLiteral: {
      Item lit;
      if (e->AsLiteral(&lit) && lit.is_i64()) return lit.i64() != 0 ? 1.0 : 0.0;
      return kDefaultSel;
    }
    default:
      return kDefaultSel;
  }
}

/// Effective key-value domain of one join side: the base column's
/// distinct count capped by the side's surviving rows (a filtered side
/// cannot carry more distinct keys than rows).
double KeyDomain(const LogicalPlan& side, int key, const Catalog& catalog) {
  const double est = EstimateRows(side, catalog);
  const ColumnStats* st = FindStats(side, key, catalog);
  if (st != nullptr && st->distinct > 0) return std::min(st->distinct, est);
  return est;
}

}  // namespace

ColumnSite ColumnOrigin(const LogicalPlan& node, int col) {
  if (col < 0 || static_cast<size_t>(col) >= node.schema.num_fields()) {
    return {};
  }
  switch (node.kind) {
    case NodeKind::kScan:
      return {node.table, node.scan_cols[col]};
    case NodeKind::kFilter:
    case NodeKind::kSort:
    case NodeKind::kLimit:
    case NodeKind::kExchange:
      return ColumnOrigin(*node.children[0], col);
    case NodeKind::kProject: {
      const MapOutput& m = node.projections[col];
      const int src = m.passthrough_col >= 0
                          ? m.passthrough_col
                          : (m.expr != nullptr ? m.expr->AsColumnIndex() : -1);
      return src >= 0 ? ColumnOrigin(*node.children[0], src) : ColumnSite{};
    }
    case NodeKind::kJoin: {
      if (node.join_type == JoinType::kInner) {
        const int nb =
            static_cast<int>(node.children[0]->schema.num_fields());
        return col < nb ? ColumnOrigin(*node.children[0], col)
                        : ColumnOrigin(*node.children[1], col - nb);
      }
      return ColumnOrigin(*node.children[1], col);
    }
    case NodeKind::kAggregate: {
      if (static_cast<size_t>(col) < node.group_keys.size()) {
        return ColumnOrigin(*node.children[0], node.group_keys[col]);
      }
      return {};
    }
  }
  return {};
}

double Selectivity(const ExprPtr& pred, const LogicalPlan& input,
                   const Catalog& catalog) {
  return Clamp01(SelImpl(pred, input, catalog));
}

double EstimateRows(const LogicalPlan& node, const Catalog& catalog) {
  switch (node.kind) {
    case NodeKind::kScan: {
      auto t = catalog.tables.find(node.table);
      const double rows =
          t != catalog.tables.end() ? t->second.rows : kDefaultRows;
      return rows * Selectivity(node.scan_filter, node, catalog);
    }
    case NodeKind::kFilter:
      return EstimateRows(*node.children[0], catalog) *
             Selectivity(node.predicate, *node.children[0], catalog);
    case NodeKind::kProject:
    case NodeKind::kSort:
    case NodeKind::kExchange:
      return EstimateRows(*node.children[0], catalog);
    case NodeKind::kLimit:
      return std::min(EstimateRows(*node.children[0], catalog),
                      static_cast<double>(node.limit));
    case NodeKind::kAggregate: {
      const double in = EstimateRows(*node.children[0], catalog);
      if (node.group_keys.empty()) return 1.0;
      double groups = 1.0;
      for (int key : node.group_keys) {
        const ColumnStats* st = FindStats(*node.children[0], key, catalog);
        groups *= st != nullptr && st->distinct > 0 ? st->distinct : in;
      }
      double est = std::min(in, groups);
      if (node.having != nullptr) est *= kHavingSel;
      return est;
    }
    case NodeKind::kJoin: {
      const LogicalPlan& build = *node.children[0];
      const LogicalPlan& probe = *node.children[1];
      const double b = EstimateRows(build, catalog);
      const double p = EstimateRows(probe, catalog);
      const double db = KeyDomain(build, node.build_key, catalog);
      const double dp = KeyDomain(probe, node.probe_key, catalog);
      switch (node.join_type) {
        case JoinType::kInner:
          return b * p / std::max({db, dp, 1.0});
        case JoinType::kSemi:
          return p * std::min(1.0, db / std::max(dp, 1.0));
        case JoinType::kAnti:
          return p * (1.0 - std::min(1.0, db / std::max(dp, 1.0))) +
                 p * 0.05;
      }
      return p;
    }
  }
  return 0.0;
}

CostModel CostModel::FromJoinModel(const std::map<std::string, double>& phases,
                                   double rows_per_side) {
  CostModel m;
  if (rows_per_side <= 0) return m;
  auto get = [&phases](const char* key) {
    auto it = phases.find(key);
    return it == phases.end() ? 0.0 : it->second;
  };
  const double exchange = get("phase.local_histogram") +
                          get("phase.global_histogram") +
                          get("phase.network_partition");
  if (exchange > 0) m.exchange_per_row = exchange / (2.0 * rows_per_side);
  const double bp = get("phase.build_probe");
  if (bp > 0) {
    m.build_per_row = bp * (2.0 / 3.0) / rows_per_side;
    m.probe_per_row = bp * (1.0 / 3.0) / rows_per_side;
  }
  return m;
}

double JoinCost(const CostModel& model, double build_rows, double probe_rows) {
  return model.exchange_per_row * (build_rows + probe_rows) +
         model.build_per_row * build_rows + model.probe_per_row * probe_rows;
}

}  // namespace modularis::planner
