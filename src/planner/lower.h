#ifndef MODULARIS_PLANNER_LOWER_H_
#define MODULARIS_PLANNER_LOWER_H_

#include <map>
#include <string>
#include <vector>

#include "core/stats.h"
#include "planner/logical_plan.h"
#include "plans/common.h"

/// \file lower.h
/// Lowering from the logical-plan IR to the sub-operator DAG.
///
/// A query splits into two physical pieces:
///
///  * SplitAtDriver peels the driver-side tail off the logical root —
///    LIMIT → ORDER BY → [finalize projection] → merge aggregation —
///    leaving `rank_root`, the part every rank executes over its shard.
///    The peeled tail becomes the DriverSpec the executor's driver
///    applies to the concatenated rank partials.
///  * LowerRankPlan emits `rank_root` as a PipelinePlan of sub-operators.
///    The scan leaves (ScanLeafKind) and the exchange transport
///    (LoweringContext::serverless + ExecOptions::tcp_exchange, routed
///    through plans::AddExchangePipelines) are the only plan fragments
///    that differ per platform — the paper's Figs. 6/7 in one lowering.
///
/// The emitted shapes are exactly the hand-built ones these helpers were
/// hoisted from (tpch/queries.cc pre-planner): a lowered plan is
/// byte-identical in output to its hand-built equivalent.

namespace modularis::planner {

/// How a Scan node turns into sub-operators.
enum class ScanLeafKind {
  /// In-memory RowVector fragment: RowScan + MapOp column prune.
  kMemoryRows,
  /// ColumnFile on NFS/S3: ColumnFileScan with projection + range
  /// pushdown (scan_cols / scan_ranges).
  kColumnFile,
  /// Smart storage: S3SelectRequest carries projection AND the full scan
  /// filter into the storage service; no residual filter remains (§4.5).
  kS3Select,
};

/// Per-rank lowering environment. Copy per rank; the exchange counter
/// then yields identical (shared) S3 object prefixes on every rank.
struct LoweringContext {
  ScanLeafKind scan_leaf = ScanLeafKind::kMemoryRows;
  /// Serverless data plane: S3Exchange instead of MPI/TCP, exchanged
  /// partitions read back via ColumnFileScan.
  bool serverless = false;
  bool fused = true;
  int world = 1;
  ExecOptions exec;
  /// Unique-per-run namespace prefixing S3 exchange objects.
  std::string tag;
  /// Receives planner.time.lower (nullable).
  StatsRegistry* stats = nullptr;

  // Name-allocation state (internal).
  int next_exchange = 0;
  int next_join = 0;
  int next_agg = 0;
  int next_misc = 0;
  std::map<std::string, int> used_names;
};

struct LoweredPlan {
  /// Name of the pipeline holding the rank's partial result.
  std::string pipeline;
  Schema schema;
};

/// Emits `root` into `plan` as pipelines of sub-operators. The caller
/// still owns SetOutput (rank output handling differs per executor).
Result<LoweredPlan> LowerRankPlan(const LogicalPlan& root, PipelinePlan* plan,
                                  LoweringContext* ctx);

/// The driver-side tail of a query: what the driver applies to the
/// concatenated per-rank partials.
struct DriverSpec {
  /// The subtree every rank executes (feed this to LowerRankPlan).
  LogicalPlanPtr rank_root;
  Schema rank_schema;
  /// Re-aggregate the rank partials (rank aggregation is partial: each
  /// rank reduced only its own shard).
  bool merge = false;
  std::vector<int> merge_keys;
  std::vector<AggSpec> merge_aggs;
  /// HAVING over the merged groups (must run after the merge).
  ExprPtr merge_having;
  /// Final projection after the merge (empty = none).
  std::vector<MapOutput> finalize;
  Schema final_schema;
  std::vector<SortKey> sort;
  /// 0 = no limit; otherwise requires a sort (TopK).
  size_t limit = 0;
};

/// Splits the logical root into rank subtree + driver tail. Fails only
/// on shapes with no distributed execution (LIMIT without ORDER BY).
Result<DriverSpec> SplitAtDriver(LogicalPlanPtr root);

}  // namespace modularis::planner

#endif  // MODULARIS_PLANNER_LOWER_H_
