#ifndef MODULARIS_PLANNER_PASSES_H_
#define MODULARIS_PLANNER_PASSES_H_

#include <vector>

#include "core/stats.h"
#include "planner/cost.h"
#include "planner/logical_plan.h"

/// \file passes.h
/// The rewrite-pass pipeline over the logical-plan IR. Each pass is a
/// pure tree-to-tree function (copy-on-write over the immutable nodes);
/// Optimize() composes them in the fixed order
///
///   pushdown → constant-fold → join-order → prune
///
/// Pushdown first so scan filters are in place before anything reasons
/// about scan cardinalities; fold before the cost pass so folded
/// comparison bounds are visible to the range-selectivity estimator;
/// join order before pruning because side swaps permute intermediate
/// schemas and pruning re-derives the required columns afterwards.
///
/// Every pass bails to its unchanged input when it meets an expression
/// it cannot rewrite (Expr::RebuildWithChildren returning null) — the
/// safe default for IR extensions. Pass activity is reported through the
/// StatsRegistry (nullable) under "planner.passes.*".

namespace modularis::planner {

struct PlannerOptions {
  /// Empty catalog disables the cost-based join-order pass.
  Catalog catalog;
  CostModel cost;
};

/// Merges Filter nodes downward: Filter(Scan) folds into the scan's
/// residual filter, stacked Filters merge into one conjunction. Filters
/// above joins stay put (they reference both sides).
/// Stats: planner.passes.pushdown.moved.
LogicalPlanPtr PushDownPredicates(LogicalPlanPtr root, StatsRegistry* stats);

/// Evaluates constant subtrees via the checked Expr interpreter and
/// replaces them with literals (e.g. the authored `date - interval`
/// arithmetic of Q1, which must become a plain literal for range
/// extraction to see the bound).
/// Stats: planner.passes.fold.folded.
LogicalPlanPtr FoldConstants(LogicalPlanPtr root, StatsRegistry* stats);

/// Cost-based build/probe side selection: for every inner join, builds
/// on the side with fewer estimated rows (hash-table insertion costs
/// more than probing under any sensible CostModel), and records whether
/// broadcasting the chosen build side is sane (build ≤ probe) in
/// LogicalPlan::broadcast_ok. Semi/anti joins never swap (their sides
/// are semantically fixed). No-op when the catalog is empty.
/// Stats: planner.passes.joinorder.{swaps,broadcast_allowed,bailouts}.
LogicalPlanPtr ChooseJoinOrder(LogicalPlanPtr root, const Catalog& catalog,
                               const CostModel& model, StatsRegistry* stats);

/// Narrows every scan to the columns actually consumed above it and
/// remaps all column references accordingly. Also extracts min-max
/// ranges for date/integer scan-filter bounds into scan_ranges (the
/// column-file chunk-pruning contract; the residual filter keeps every
/// conjunct, so extraction is output-invariant).
/// Stats: planner.passes.prune.cols_dropped.
LogicalPlanPtr PruneColumns(LogicalPlanPtr root, StatsRegistry* stats);

/// The full pipeline. Also records planner.time.optimize and, with a
/// catalog, the root cardinality estimate (planner.cost.root_rows).
LogicalPlanPtr Optimize(LogicalPlanPtr root, const PlannerOptions& options,
                        StatsRegistry* stats);

/// Rewrites every column reference in `e` through `map` (old index →
/// new index, -1 = dropped). Returns null when the tree references a
/// dropped column or contains a non-rewritable node. Shared by the
/// passes and exposed for tests.
ExprPtr RemapColumns(const ExprPtr& e, const std::vector<int>& map);

}  // namespace modularis::planner

#endif  // MODULARIS_PLANNER_PASSES_H_
