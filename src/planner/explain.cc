#include "planner/explain.h"

#include <cmath>
#include <limits>

#include "suboperators/basic_ops.h"

namespace modularis::planner {
namespace {

std::string IntList(const std::vector<int>& v) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(v[i]);
  }
  return out + "]";
}

std::string Bound(int64_t v) {
  if (v == std::numeric_limits<int64_t>::min()) return "min";
  if (v == std::numeric_limits<int64_t>::max()) return "max";
  return std::to_string(v);
}

std::string ProjectionItem(const MapOutput& m) {
  if (m.passthrough_col >= 0) return "$" + std::to_string(m.passthrough_col);
  return m.expr != nullptr ? m.expr->ToString() : "?";
}

std::string AggList(const std::vector<AggSpec>& aggs) {
  std::string out = "[";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggs[i].name + "=" + AggKindName(aggs[i].kind) + "(";
    out += aggs[i].input != nullptr ? aggs[i].input->ToString() : "*";
    out += ")";
  }
  return out + "]";
}

std::string SortList(const std::vector<SortKey>& keys) {
  std::string out = "[";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += "$" + std::to_string(keys[i].col) +
           (keys[i].desc ? " desc" : " asc");
  }
  return out + "]";
}

void RenderLogical(const LogicalPlan& n, const Catalog* catalog, int depth,
                   std::string* out) {
  out->append(2 * static_cast<size_t>(depth), ' ');
  switch (n.kind) {
    case NodeKind::kScan: {
      *out += "Scan " + (n.table_name.empty() ? "?" : n.table_name) +
              " table=" + std::to_string(n.table) +
              " cols=" + IntList(n.scan_cols);
      if (n.scan_filter != nullptr) {
        *out += " filter=" + n.scan_filter->ToString();
      }
      if (!n.scan_ranges.empty()) {
        *out += " ranges=[";
        for (size_t i = 0; i < n.scan_ranges.size(); ++i) {
          if (i > 0) *out += ", ";
          *out += "$" + std::to_string(n.scan_ranges[i].col) + ":" +
                  Bound(n.scan_ranges[i].lo) + ".." +
                  Bound(n.scan_ranges[i].hi);
        }
        *out += "]";
      }
      break;
    }
    case NodeKind::kFilter:
      *out += "Filter " + n.predicate->ToString();
      break;
    case NodeKind::kProject: {
      *out += "Project [";
      for (size_t i = 0; i < n.projections.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += ProjectionItem(n.projections[i]);
      }
      *out += "]";
      break;
    }
    case NodeKind::kJoin: {
      const char* type = n.join_type == JoinType::kInner  ? "inner"
                         : n.join_type == JoinType::kSemi ? "semi"
                                                          : "anti";
      *out += std::string("Join ") + type +
              " build=$" + std::to_string(n.build_key) + " probe=$" +
              std::to_string(n.probe_key) +
              (n.broadcast_ok ? "" : " no-broadcast");
      break;
    }
    case NodeKind::kAggregate:
      *out += "Aggregate keys=" + IntList(n.group_keys) +
              " aggs=" + AggList(n.aggs);
      if (n.having != nullptr) *out += " having=" + n.having->ToString();
      break;
    case NodeKind::kSort:
      *out += "Sort " + SortList(n.sort_keys);
      break;
    case NodeKind::kLimit:
      *out += "Limit " + std::to_string(n.limit);
      break;
    case NodeKind::kExchange:
      *out += "Exchange key=$" + std::to_string(n.exchange_key);
      break;
  }
  if (catalog != nullptr && !catalog->empty()) {
    *out += " rows~" +
            std::to_string(
                static_cast<long long>(std::llround(EstimateRows(n, *catalog))));
  }
  *out += "\n";
  for (const auto& child : n.children) {
    RenderLogical(*child, catalog, depth + 1, out);
  }
}

void RenderPhysical(const SubOperator& op, int depth, std::string* out);

void RenderPlan(const PipelinePlan& plan, int depth, std::string* out) {
  for (size_t i = 0; i < plan.num_pipelines(); ++i) {
    out->append(2 * static_cast<size_t>(depth), ' ');
    *out += "[" + plan.pipeline_name(i) + "]\n";
    RenderPhysical(*plan.pipeline_root(i), depth + 1, out);
  }
  if (plan.output_op() != nullptr) {
    out->append(2 * static_cast<size_t>(depth), ' ');
    *out += "[output]\n";
    RenderPhysical(*plan.output_op(), depth + 1, out);
  }
}

void RenderPhysical(const SubOperator& op, int depth, std::string* out) {
  if (const auto* plan = dynamic_cast<const PipelinePlan*>(&op)) {
    out->append(2 * static_cast<size_t>(depth), ' ');
    *out += "PipelinePlan\n";
    RenderPlan(*plan, depth + 1, out);
    return;
  }
  out->append(2 * static_cast<size_t>(depth), ' ');
  *out += op.name() + "\n";
  for (size_t i = 0; i < op.num_children(); ++i) {
    RenderPhysical(*op.child(i), depth + 1, out);
  }
  if (const auto* nm = dynamic_cast<const NestedMap*>(&op)) {
    out->append(2 * static_cast<size_t>(depth + 1), ' ');
    *out += "(nested)\n";
    RenderPhysical(*nm->nested_plan(), depth + 2, out);
  }
}

}  // namespace

std::string ExplainLogical(const LogicalPlan& root, const Catalog* catalog) {
  std::string out;
  RenderLogical(root, catalog, 0, &out);
  return out;
}

std::string ExplainPhysical(const SubOperator& op) {
  std::string out;
  RenderPhysical(op, 0, &out);
  return out;
}

}  // namespace modularis::planner
