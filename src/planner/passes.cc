#include "planner/passes.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <numeric>
#include <utility>

#include "core/row_vector.h"

namespace modularis::planner {
namespace {

std::shared_ptr<LogicalPlan> Mutable(const LogicalPlan& n) {
  return std::make_shared<LogicalPlan>(n);
}

std::vector<int> IdentityMap(size_t n) {
  std::vector<int> m(n);
  std::iota(m.begin(), m.end(), 0);
  return m;
}

bool IsIdentity(const std::vector<int>& m) {
  for (size_t i = 0; i < m.size(); ++i) {
    if (m[i] != static_cast<int>(i)) return false;
  }
  return true;
}

void Count(StatsRegistry* stats, const char* key, int64_t delta) {
  if (stats != nullptr && delta != 0) stats->AddCounter(key, delta);
}

// -- Predicate pushdown -----------------------------------------------------

LogicalPlanPtr PushRec(const LogicalPlanPtr& n, int64_t* moved) {
  std::vector<LogicalPlanPtr> kids;
  kids.reserve(n->children.size());
  bool changed = false;
  for (const LogicalPlanPtr& c : n->children) {
    kids.push_back(PushRec(c, moved));
    changed = changed || kids.back() != c;
  }
  LogicalPlanPtr cur = n;
  if (changed) {
    auto m = Mutable(*n);
    m->children = std::move(kids);
    cur = m;
  }
  if (cur->kind != NodeKind::kFilter) return cur;
  const LogicalPlanPtr& child = cur->children[0];
  if (child->kind == NodeKind::kScan) {
    auto m = Mutable(*child);
    m->scan_filter = m->scan_filter != nullptr
                         ? ex::And(m->scan_filter, cur->predicate)
                         : cur->predicate;
    ++*moved;
    return m;
  }
  if (child->kind == NodeKind::kFilter) {
    auto m = Mutable(*child);
    m->predicate = ex::And(m->predicate, cur->predicate);
    ++*moved;
    return PushRec(m, moved);  // the merged filter may now sit on a scan
  }
  return cur;
}

// -- Constant folding -------------------------------------------------------

ExprPtr LiteralFromItem(const Item& v) {
  if (v.is_i64()) return ex::Lit(v.i64());
  if (v.is_f64()) return ex::Lit(v.f64());
  if (v.is_str()) return ex::Lit(v.str());
  return nullptr;
}

ExprPtr FoldExpr(const ExprPtr& e, const RowRef& dummy, int64_t* folded) {
  if (e == nullptr) return e;
  const ExprKind k = e->kind();
  if (k == ExprKind::kColumn || k == ExprKind::kLiteral) return e;
  const size_t nc = e->NumExprChildren();
  if (nc == 0) return e;  // opaque leaf
  std::vector<ExprPtr> kids;
  kids.reserve(nc);
  bool changed = false;
  bool all_literal = true;
  for (size_t i = 0; i < nc; ++i) {
    ExprPtr c = e->ExprChild(i);
    ExprPtr f = FoldExpr(c, dummy, folded);
    changed = changed || f != c;
    all_literal =
        all_literal && f != nullptr && f->kind() == ExprKind::kLiteral;
    kids.push_back(std::move(f));
  }
  ExprPtr cur = e;
  if (changed) {
    ExprPtr rebuilt = e->RebuildWithChildren(std::move(kids));
    if (rebuilt == nullptr) return e;  // not rewritable: keep original
    cur = std::move(rebuilt);
  }
  if (all_literal && k != ExprKind::kOther) {
    Item v;
    if (cur->EvalChecked(dummy, &v).ok()) {
      if (ExprPtr lit = LiteralFromItem(v); lit != nullptr) {
        ++*folded;
        return lit;
      }
    }
  }
  return cur;
}

LogicalPlanPtr FoldRec(const LogicalPlanPtr& n, const RowRef& dummy,
                       int64_t* folded) {
  std::vector<LogicalPlanPtr> kids;
  kids.reserve(n->children.size());
  bool changed = false;
  for (const LogicalPlanPtr& c : n->children) {
    kids.push_back(FoldRec(c, dummy, folded));
    changed = changed || kids.back() != c;
  }
  auto fold = [&](const ExprPtr& e) {
    ExprPtr f = FoldExpr(e, dummy, folded);
    changed = changed || f != e;
    return f;
  };
  ExprPtr scan_filter = fold(n->scan_filter);
  ExprPtr predicate = fold(n->predicate);
  ExprPtr having = fold(n->having);
  std::vector<MapOutput> projections = n->projections;
  for (MapOutput& m : projections) {
    if (m.passthrough_col < 0) m.expr = fold(m.expr);
  }
  std::vector<AggSpec> aggs = n->aggs;
  for (AggSpec& a : aggs) {
    if (a.input != nullptr) a.input = fold(a.input);
  }
  if (!changed) return n;
  auto m = Mutable(*n);
  m->children = std::move(kids);
  m->scan_filter = std::move(scan_filter);
  m->predicate = std::move(predicate);
  m->having = std::move(having);
  m->projections = std::move(projections);
  m->aggs = std::move(aggs);
  return m;
}

// -- Cost-based join ordering -----------------------------------------------

MapOutput RemapOutput(const MapOutput& m, const std::vector<int>& map,
                      bool* ok) {
  if (m.passthrough_col >= 0) {
    if (static_cast<size_t>(m.passthrough_col) >= map.size() ||
        map[m.passthrough_col] < 0) {
      *ok = false;
      return m;
    }
    return MapOutput::Pass(map[m.passthrough_col]);
  }
  ExprPtr e = RemapColumns(m.expr, map);
  if (e == nullptr) {
    *ok = false;
    return m;
  }
  return MapOutput::Compute(std::move(e));
}

int RemapCol(int col, const std::vector<int>& map, bool* ok) {
  if (col < 0 || static_cast<size_t>(col) >= map.size() || map[col] < 0) {
    *ok = false;
    return col;
  }
  return map[col];
}

struct Reordered {
  LogicalPlanPtr node;
  /// Old output position → new output position.
  std::vector<int> remap;
};

Reordered ReorderRec(const LogicalPlanPtr& n, const Catalog& catalog,
                     const CostModel& model, int64_t* swaps,
                     int64_t* broadcasts, bool* ok) {
  switch (n->kind) {
    case NodeKind::kScan:
      return {n, IdentityMap(n->schema.num_fields())};
    case NodeKind::kFilter: {
      Reordered c =
          ReorderRec(n->children[0], catalog, model, swaps, broadcasts, ok);
      ExprPtr pred = RemapColumns(n->predicate, c.remap);
      if (pred == nullptr) *ok = false;
      if (!*ok) return {n, {}};
      auto m = Mutable(*n);
      m->children = {c.node};
      m->predicate = std::move(pred);
      m->schema = c.node->schema;
      return {m, std::move(c.remap)};
    }
    case NodeKind::kProject: {
      Reordered c =
          ReorderRec(n->children[0], catalog, model, swaps, broadcasts, ok);
      std::vector<MapOutput> items;
      items.reserve(n->projections.size());
      for (const MapOutput& item : n->projections) {
        items.push_back(RemapOutput(item, c.remap, ok));
      }
      if (!*ok) return {n, {}};
      auto m = Mutable(*n);
      m->children = {c.node};
      m->projections = std::move(items);
      return {m, IdentityMap(n->schema.num_fields())};
    }
    case NodeKind::kAggregate: {
      Reordered c =
          ReorderRec(n->children[0], catalog, model, swaps, broadcasts, ok);
      std::vector<int> keys = n->group_keys;
      for (int& k : keys) k = RemapCol(k, c.remap, ok);
      std::vector<AggSpec> aggs = n->aggs;
      for (AggSpec& a : aggs) {
        if (a.input != nullptr) {
          a.input = RemapColumns(a.input, c.remap);
          if (a.input == nullptr) *ok = false;
        }
      }
      if (!*ok) return {n, {}};
      auto m = Mutable(*n);
      m->children = {c.node};
      m->group_keys = std::move(keys);
      m->aggs = std::move(aggs);
      m->schema =
          ReduceByKey::MakeOutputSchema(c.node->schema, m->group_keys, m->aggs);
      return {m, IdentityMap(n->schema.num_fields())};
    }
    case NodeKind::kSort: {
      Reordered c =
          ReorderRec(n->children[0], catalog, model, swaps, broadcasts, ok);
      std::vector<SortKey> keys = n->sort_keys;
      for (SortKey& k : keys) k.col = RemapCol(k.col, c.remap, ok);
      if (!*ok) return {n, {}};
      auto m = Mutable(*n);
      m->children = {c.node};
      m->sort_keys = std::move(keys);
      m->schema = c.node->schema;
      return {m, std::move(c.remap)};
    }
    case NodeKind::kLimit: {
      Reordered c =
          ReorderRec(n->children[0], catalog, model, swaps, broadcasts, ok);
      if (!*ok) return {n, {}};
      auto m = Mutable(*n);
      m->children = {c.node};
      m->schema = c.node->schema;
      return {m, std::move(c.remap)};
    }
    case NodeKind::kExchange: {
      Reordered c =
          ReorderRec(n->children[0], catalog, model, swaps, broadcasts, ok);
      auto m = Mutable(*n);
      m->children = {c.node};
      m->exchange_key = RemapCol(n->exchange_key, c.remap, ok);
      m->schema = c.node->schema;
      if (!*ok) return {n, {}};
      return {m, std::move(c.remap)};
    }
    case NodeKind::kJoin:
      break;
  }
  Reordered b =
      ReorderRec(n->children[0], catalog, model, swaps, broadcasts, ok);
  Reordered p =
      ReorderRec(n->children[1], catalog, model, swaps, broadcasts, ok);
  int bk = RemapCol(n->build_key, b.remap, ok);
  int pk = RemapCol(n->probe_key, p.remap, ok);
  if (!*ok) return {n, {}};
  const double eb = EstimateRows(*b.node, catalog);
  const double ep = EstimateRows(*p.node, catalog);
  const bool swap = n->join_type == JoinType::kInner &&
                    JoinCost(model, ep, eb) < JoinCost(model, eb, ep);
  if (swap) ++*swaps;
  const LogicalPlanPtr& nb = swap ? p.node : b.node;
  const LogicalPlanPtr& np = swap ? b.node : p.node;
  auto m = Mutable(*n);
  m->children = {nb, np};
  m->build_key = swap ? pk : bk;
  m->probe_key = swap ? bk : pk;
  m->schema = n->join_type == JoinType::kInner
                  ? nb->schema.Concat(np->schema)
                  : np->schema;
  m->broadcast_ok = (swap ? ep : eb) <= (swap ? eb : ep);
  if (m->broadcast_ok) ++*broadcasts;
  std::vector<int> remap;
  if (n->join_type == JoinType::kInner) {
    const size_t ob = n->children[0]->schema.num_fields();
    const size_t op = n->children[1]->schema.num_fields();
    const size_t off_b = swap ? p.node->schema.num_fields() : 0;
    const size_t off_p = swap ? 0 : b.node->schema.num_fields();
    remap.resize(ob + op);
    for (size_t i = 0; i < ob; ++i) {
      remap[i] = static_cast<int>(off_b) + b.remap[i];
    }
    for (size_t j = 0; j < op; ++j) {
      remap[ob + j] = static_cast<int>(off_p) + p.remap[j];
    }
  } else {
    remap = std::move(p.remap);
  }
  return {m, std::move(remap)};
}

// -- Projection pruning -----------------------------------------------------

void RequireExprCols(const ExprPtr& e, std::vector<char>* required) {
  if (e == nullptr) return;
  std::vector<int> cols;
  e->CollectColumns(&cols);
  for (int c : cols) {
    if (c >= 0 && static_cast<size_t>(c) < required->size()) {
      (*required)[c] = 1;
    }
  }
}

/// Extracts min-max bounds from the scan filter's top-level date/integer
/// comparison conjuncts into `ranges` (full-table column indices). The
/// residual filter keeps every conjunct, so this only prunes chunks that
/// cannot contain qualifying rows.
void ExtractRanges(const LogicalPlan& scan,
                   std::vector<ColumnFileScan::Range>* ranges) {
  if (scan.scan_filter == nullptr) return;
  struct Bounds {
    int64_t lo = std::numeric_limits<int64_t>::min();
    int64_t hi = std::numeric_limits<int64_t>::max();
  };
  std::map<int, Bounds> bounds;
  auto consider = [&](const ExprPtr& e) {
    CmpOp op;
    if (e == nullptr || !e->AsCompare(&op) || e->NumExprChildren() != 2) {
      return;
    }
    ExprPtr lhs = e->ExprChild(0);
    ExprPtr rhs = e->ExprChild(1);
    if (lhs == nullptr || rhs == nullptr) return;
    int col = lhs->AsColumnIndex();
    ExprPtr lit = rhs;
    if (col < 0) {  // literal-on-the-left form: flip the comparison
      col = rhs->AsColumnIndex();
      lit = lhs;
      switch (op) {
        case CmpOp::kLt:
          op = CmpOp::kGt;
          break;
        case CmpOp::kLe:
          op = CmpOp::kGe;
          break;
        case CmpOp::kGt:
          op = CmpOp::kLt;
          break;
        case CmpOp::kGe:
          op = CmpOp::kLe;
          break;
        default:
          break;
      }
    }
    if (col < 0 || static_cast<size_t>(col) >= scan.scan_cols.size()) return;
    Item v;
    if (!lit->AsLiteral(&v) || !v.is_i64()) return;
    const int full_col = scan.scan_cols[col];
    const AtomType type = scan.table_schema.field(full_col).type;
    if (type != AtomType::kDate && type != AtomType::kInt32 &&
        type != AtomType::kInt64) {
      return;
    }
    Bounds& b = bounds[full_col];
    switch (op) {
      case CmpOp::kEq:
        b.lo = std::max(b.lo, v.i64());
        b.hi = std::min(b.hi, v.i64());
        break;
      case CmpOp::kLt:
        b.hi = std::min(b.hi, v.i64() - 1);
        break;
      case CmpOp::kLe:
        b.hi = std::min(b.hi, v.i64());
        break;
      case CmpOp::kGt:
        b.lo = std::max(b.lo, v.i64() + 1);
        break;
      case CmpOp::kGe:
        b.lo = std::max(b.lo, v.i64());
        break;
      case CmpOp::kNe:
        break;
    }
  };
  const ExprPtr& f = scan.scan_filter;
  if (f->kind() == ExprKind::kAnd) {
    for (size_t i = 0; i < f->NumExprChildren(); ++i) consider(f->ExprChild(i));
  } else {
    consider(f);
  }
  for (const auto& [col, b] : bounds) {
    if (b.lo == std::numeric_limits<int64_t>::min() &&
        b.hi == std::numeric_limits<int64_t>::max()) {
      continue;
    }
    ranges->push_back({col, b.lo, b.hi});
  }
}

struct PrunedNode {
  LogicalPlanPtr node;
  /// Old output position → new output position (-1 = dropped).
  std::vector<int> map;
};

PrunedNode PruneRec(const LogicalPlanPtr& n, std::vector<char> required,
                    bool* ok, int64_t* dropped) {
  switch (n->kind) {
    case NodeKind::kScan: {
      const size_t nf = n->schema.num_fields();
      RequireExprCols(n->scan_filter, &required);
      std::vector<int> keep;
      keep.reserve(nf);
      std::vector<int> map(nf, -1);
      for (size_t i = 0; i < nf; ++i) {
        if (required[i]) {
          map[i] = static_cast<int>(keep.size());
          keep.push_back(static_cast<int>(i));
        }
      }
      *dropped += static_cast<int64_t>(nf - keep.size());
      auto m = Mutable(*n);
      std::vector<int> cols;
      cols.reserve(keep.size());
      for (int i : keep) cols.push_back(n->scan_cols[i]);
      m->scan_cols = std::move(cols);
      m->schema = n->table_schema.Select(m->scan_cols);
      if (n->scan_filter != nullptr) {
        ExtractRanges(*n, &m->scan_ranges);
        m->scan_filter = RemapColumns(n->scan_filter, map);
        if (m->scan_filter == nullptr) {
          *ok = false;
          return {n, {}};
        }
      }
      return {m, std::move(map)};
    }
    case NodeKind::kFilter: {
      RequireExprCols(n->predicate, &required);
      PrunedNode c = PruneRec(n->children[0], std::move(required), ok, dropped);
      if (!*ok) return {n, {}};
      ExprPtr pred = RemapColumns(n->predicate, c.map);
      if (pred == nullptr) {
        *ok = false;
        return {n, {}};
      }
      auto m = Mutable(*n);
      m->children = {c.node};
      m->predicate = std::move(pred);
      m->schema = c.node->schema;
      return {m, std::move(c.map)};
    }
    case NodeKind::kProject: {
      std::vector<char> creq(n->children[0]->schema.num_fields(), 0);
      for (const MapOutput& item : n->projections) {
        if (item.passthrough_col >= 0) {
          creq[item.passthrough_col] = 1;
        } else {
          RequireExprCols(item.expr, &creq);
        }
      }
      PrunedNode c = PruneRec(n->children[0], std::move(creq), ok, dropped);
      std::vector<MapOutput> items;
      items.reserve(n->projections.size());
      for (const MapOutput& item : n->projections) {
        items.push_back(RemapOutput(item, c.map, ok));
      }
      if (!*ok) return {n, {}};
      auto m = Mutable(*n);
      m->children = {c.node};
      m->projections = std::move(items);
      return {m, IdentityMap(n->schema.num_fields())};
    }
    case NodeKind::kAggregate: {
      std::vector<char> creq(n->children[0]->schema.num_fields(), 0);
      for (int k : n->group_keys) creq[k] = 1;
      for (const AggSpec& a : n->aggs) RequireExprCols(a.input, &creq);
      PrunedNode c = PruneRec(n->children[0], std::move(creq), ok, dropped);
      if (!*ok) return {n, {}};
      std::vector<int> keys = n->group_keys;
      for (int& k : keys) k = RemapCol(k, c.map, ok);
      std::vector<AggSpec> aggs = n->aggs;
      for (AggSpec& a : aggs) {
        if (a.input != nullptr) {
          a.input = RemapColumns(a.input, c.map);
          if (a.input == nullptr) *ok = false;
        }
      }
      if (!*ok) return {n, {}};
      auto m = Mutable(*n);
      m->children = {c.node};
      m->group_keys = std::move(keys);
      m->aggs = std::move(aggs);
      m->schema =
          ReduceByKey::MakeOutputSchema(c.node->schema, m->group_keys, m->aggs);
      return {m, IdentityMap(n->schema.num_fields())};
    }
    case NodeKind::kSort: {
      for (const SortKey& k : n->sort_keys) required[k.col] = 1;
      PrunedNode c = PruneRec(n->children[0], std::move(required), ok, dropped);
      if (!*ok) return {n, {}};
      std::vector<SortKey> keys = n->sort_keys;
      for (SortKey& k : keys) k.col = RemapCol(k.col, c.map, ok);
      if (!*ok) return {n, {}};
      auto m = Mutable(*n);
      m->children = {c.node};
      m->sort_keys = std::move(keys);
      m->schema = c.node->schema;
      return {m, std::move(c.map)};
    }
    case NodeKind::kLimit: {
      PrunedNode c = PruneRec(n->children[0], std::move(required), ok, dropped);
      if (!*ok) return {n, {}};
      auto m = Mutable(*n);
      m->children = {c.node};
      m->schema = c.node->schema;
      return {m, std::move(c.map)};
    }
    case NodeKind::kExchange: {
      required[n->exchange_key] = 1;
      PrunedNode c = PruneRec(n->children[0], std::move(required), ok, dropped);
      if (!*ok) return {n, {}};
      auto m = Mutable(*n);
      m->children = {c.node};
      m->exchange_key = RemapCol(n->exchange_key, c.map, ok);
      m->schema = c.node->schema;
      if (!*ok) return {n, {}};
      return {m, std::move(c.map)};
    }
    case NodeKind::kJoin:
      break;
  }
  const LogicalPlan& build = *n->children[0];
  const LogicalPlan& probe = *n->children[1];
  const size_t ob = build.schema.num_fields();
  std::vector<char> breq(ob, 0);
  std::vector<char> preq(probe.schema.num_fields(), 0);
  if (n->join_type == JoinType::kInner) {
    for (size_t i = 0; i < ob; ++i) breq[i] = required[i];
    for (size_t j = 0; j < preq.size(); ++j) preq[j] = required[ob + j];
  } else {
    preq = required;
  }
  breq[n->build_key] = 1;
  preq[n->probe_key] = 1;
  PrunedNode b = PruneRec(n->children[0], std::move(breq), ok, dropped);
  PrunedNode p = PruneRec(n->children[1], std::move(preq), ok, dropped);
  if (!*ok) return {n, {}};
  auto m = Mutable(*n);
  m->children = {b.node, p.node};
  m->build_key = RemapCol(n->build_key, b.map, ok);
  m->probe_key = RemapCol(n->probe_key, p.map, ok);
  if (!*ok) return {n, {}};
  m->schema = n->join_type == JoinType::kInner
                  ? b.node->schema.Concat(p.node->schema)
                  : p.node->schema;
  std::vector<int> map;
  if (n->join_type == JoinType::kInner) {
    const int nb = static_cast<int>(b.node->schema.num_fields());
    map.resize(n->schema.num_fields(), -1);
    for (size_t i = 0; i < ob; ++i) map[i] = b.map[i];
    for (size_t j = 0; j < p.map.size(); ++j) {
      map[ob + j] = p.map[j] < 0 ? -1 : nb + p.map[j];
    }
  } else {
    map = std::move(p.map);
  }
  return {m, std::move(map)};
}

}  // namespace

ExprPtr RemapColumns(const ExprPtr& e, const std::vector<int>& map) {
  if (e == nullptr) return e;
  const int col = e->AsColumnIndex();
  if (col >= 0) {
    if (static_cast<size_t>(col) >= map.size() || map[col] < 0) return nullptr;
    return map[col] == col ? e : ex::Col(map[col]);
  }
  const size_t nc = e->NumExprChildren();
  if (nc == 0) {
    if (e->kind() == ExprKind::kOther) {
      // Opaque leaf: only safe if it references no columns.
      std::vector<int> cols;
      e->CollectColumns(&cols);
      if (!cols.empty()) return nullptr;
    }
    return e;
  }
  std::vector<ExprPtr> kids;
  kids.reserve(nc);
  bool changed = false;
  for (size_t i = 0; i < nc; ++i) {
    ExprPtr c = e->ExprChild(i);
    ExprPtr r = RemapColumns(c, map);
    if (r == nullptr) return nullptr;
    changed = changed || r != c;
    kids.push_back(std::move(r));
  }
  if (!changed) return e;
  return e->RebuildWithChildren(std::move(kids));
}

LogicalPlanPtr PushDownPredicates(LogicalPlanPtr root, StatsRegistry* stats) {
  int64_t moved = 0;
  LogicalPlanPtr out = PushRec(root, &moved);
  Count(stats, "planner.passes.pushdown.moved", moved);
  return out;
}

LogicalPlanPtr FoldConstants(LogicalPlanPtr root, StatsRegistry* stats) {
  // Constant subtrees never read the input row; a zeroed single-row
  // vector satisfies the EvalChecked interface.
  RowVectorPtr dummy = RowVector::Make(Schema({Field::I64("zero")}));
  std::vector<uint8_t> zeros(dummy->schema().row_size(), 0);
  dummy->AppendRaw(zeros.data());
  int64_t folded = 0;
  LogicalPlanPtr out = FoldRec(root, dummy->row(0), &folded);
  Count(stats, "planner.passes.fold.folded", folded);
  return out;
}

LogicalPlanPtr ChooseJoinOrder(LogicalPlanPtr root, const Catalog& catalog,
                               const CostModel& model, StatsRegistry* stats) {
  if (catalog.empty()) return root;
  bool ok = true;
  int64_t swaps = 0;
  int64_t broadcasts = 0;
  Reordered r = ReorderRec(root, catalog, model, &swaps, &broadcasts, &ok);
  if (!ok || !IsIdentity(r.remap)) {
    // A swap would permute the root schema (no projection above it to
    // absorb the remap), or the tree contains a non-rewritable
    // expression: keep the authored order.
    Count(stats, "planner.passes.joinorder.bailouts", 1);
    return root;
  }
  Count(stats, "planner.passes.joinorder.swaps", swaps);
  Count(stats, "planner.passes.joinorder.broadcast_allowed", broadcasts);
  return r.node;
}

LogicalPlanPtr PruneColumns(LogicalPlanPtr root, StatsRegistry* stats) {
  bool ok = true;
  int64_t dropped = 0;
  PrunedNode r =
      PruneRec(root, std::vector<char>(root->schema.num_fields(), 1), &ok,
               &dropped);
  if (!ok || !IsIdentity(r.map)) return root;
  Count(stats, "planner.passes.prune.cols_dropped", dropped);
  return r.node;
}

LogicalPlanPtr Optimize(LogicalPlanPtr root, const PlannerOptions& options,
                        StatsRegistry* stats) {
  const auto start = std::chrono::steady_clock::now();
  root = PushDownPredicates(std::move(root), stats);
  root = FoldConstants(std::move(root), stats);
  root = ChooseJoinOrder(std::move(root), options.catalog, options.cost, stats);
  root = PruneColumns(std::move(root), stats);
  if (stats != nullptr) {
    stats->AddTime("planner.time.optimize",
                   std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count());
    if (!options.catalog.empty()) {
      stats->AddCounter(
          "planner.cost.root_rows",
          std::llround(EstimateRows(*root, options.catalog)));
    }
  }
  return root;
}

}  // namespace modularis::planner
