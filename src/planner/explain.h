#ifndef MODULARIS_PLANNER_EXPLAIN_H_
#define MODULARIS_PLANNER_EXPLAIN_H_

#include <string>

#include "core/pipeline.h"
#include "planner/cost.h"
#include "planner/logical_plan.h"

/// \file explain.h
/// EXPLAIN renderers for both plan layers:
///
///  * ExplainLogical — the IR tree, one node per line, children indented
///    two spaces. With a catalog, each line carries the cardinality
///    estimate (`rows~N`) the join-order pass acts on.
///  * ExplainPhysical — the sub-operator DAG via the SubOperator
///    introspection surface (name/num_children/child), descending into
///    PipelinePlan pipelines (`[name]` sections, `[output]` last) and
///    NestedMap nested plans (`(nested)` subtrees).
///
/// The output is deterministic for a given plan and is what the golden
/// plan-shape snapshots under tests/golden/planner/ diff against.

namespace modularis::planner {

std::string ExplainLogical(const LogicalPlan& root,
                           const Catalog* catalog = nullptr);

std::string ExplainPhysical(const SubOperator& op);

}  // namespace modularis::planner

#endif  // MODULARIS_PLANNER_EXPLAIN_H_
