#ifndef MODULARIS_PLANNER_LOGICAL_PLAN_H_
#define MODULARIS_PLANNER_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/expr.h"
#include "core/types.h"
#include "serverless/serverless_ops.h"
#include "suboperators/agg_ops.h"
#include "suboperators/basic_ops.h"
#include "suboperators/join_ops.h"

/// \file logical_plan.h
/// The platform-independent logical-plan IR. Queries are declared as a
/// tree of immutable LogicalPlan nodes with schemas resolved at
/// construction; the rewrite passes (passes.h) transform the tree, and
/// the lowering pass (lower.h) emits the sub-operator DAG — scan leaves,
/// exchange prefixes and executors chosen per platform. This is the
/// derivation step the paper assumes above the sub-operator layer (§3.1:
/// "the optimizer compiles a query into a physical plan of
/// sub-operators"); until now every plan in the repo was hand-wired.
///
/// Nodes are held by shared_ptr<const LogicalPlan> and never mutated
/// after construction: passes rebuild the spine they change and share
/// every untouched subtree, so keeping a pre-pass plan (for EXPLAIN
/// diffs or the unoptimized-lowering oracle in tests) costs nothing.

namespace modularis::planner {

struct LogicalPlan;
using LogicalPlanPtr = std::shared_ptr<const LogicalPlan>;

enum class NodeKind {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kExchange,
};

const char* NodeKindName(NodeKind kind);

/// One logical operator. A single struct rather than a class hierarchy:
/// passes switch on `kind` and the per-kind payload fields below, and a
/// rebuilt node is a plain copy with a few fields replaced.
struct LogicalPlan {
  NodeKind kind = NodeKind::kScan;
  std::vector<LogicalPlanPtr> children;
  /// Output schema, resolved by the lp:: factories at construction.
  Schema schema;

  // -- kScan ----------------------------------------------------------
  /// Parameter-tuple index carrying this table's fragment (the executor
  /// parameterizes rank plans with one fragment per table).
  int table = 0;
  std::string table_name;
  Schema table_schema;
  /// Emitted columns as full-table indices, in output order. Factories
  /// start with the identity selection; projection pruning narrows it.
  std::vector<int> scan_cols;
  /// Residual row filter over the scan OUTPUT schema (predicate pushdown
  /// merges Filter nodes into this).
  ExprPtr scan_filter;
  /// Min-max pruning ranges over FULL-table column indices, extracted
  /// from scan_filter for the column-file leaves.
  std::vector<ColumnFileScan::Range> scan_ranges;

  // -- kFilter --------------------------------------------------------
  ExprPtr predicate;

  // -- kProject -------------------------------------------------------
  std::vector<MapOutput> projections;

  // -- kJoin (children = {build, probe}) ------------------------------
  JoinType join_type = JoinType::kInner;
  int build_key = 0;
  int probe_key = 0;
  /// Join-order pass verdict: may this build side be replicated via
  /// broadcast when the execution options ask for it? Defaults to true
  /// (the pre-planner behaviour: ExecOptions::broadcast_small_build
  /// trusted the plan author).
  bool broadcast_ok = true;

  // -- kAggregate -----------------------------------------------------
  std::vector<int> group_keys;
  std::vector<AggSpec> aggs;
  /// HAVING residual over the aggregate OUTPUT schema (keys ++ aggs).
  ExprPtr having;

  // -- kSort ----------------------------------------------------------
  std::vector<SortKey> sort_keys;

  // -- kLimit ---------------------------------------------------------
  size_t limit = 0;

  // -- kExchange ------------------------------------------------------
  /// Repartitioning key (used by the KV plan templates; the TPC-H
  /// lowering inserts exchanges implicitly at join/aggregate inputs).
  int exchange_key = 0;

  const LogicalPlanPtr& child(size_t i) const { return children[i]; }
};

/// Construction helpers. Each resolves the node's output schema and
/// aborts the process on structurally invalid input (plan construction
/// is programmer-driven, not data-driven).
namespace lp {

/// Scan of table `table_name` whose fragment arrives as parameter item
/// `table`. Starts as the identity selection over `table_schema`.
LogicalPlanPtr Scan(int table, std::string table_name, Schema table_schema);

LogicalPlanPtr Filter(LogicalPlanPtr input, ExprPtr predicate);

/// Projection to `items`; `out_schema` names and types the outputs.
LogicalPlanPtr Project(LogicalPlanPtr input, std::vector<MapOutput> items,
                       Schema out_schema);

/// Hash join; output schema is build ++ probe for inner joins and the
/// probe schema for semi/anti joins (join_ops.h convention).
LogicalPlanPtr Join(LogicalPlanPtr build, LogicalPlanPtr probe, JoinType type,
                    int build_key, int probe_key);

/// Grouped aggregation; output schema is the key fields followed by one
/// field per AggSpec (ReduceByKey convention). `having` filters output
/// groups.
LogicalPlanPtr Aggregate(LogicalPlanPtr input, std::vector<int> group_keys,
                         std::vector<AggSpec> aggs, ExprPtr having = nullptr);

LogicalPlanPtr Sort(LogicalPlanPtr input, std::vector<SortKey> keys);

LogicalPlanPtr Limit(LogicalPlanPtr input, size_t limit);

/// Explicit repartitioning on `key_col` (KV plan templates).
LogicalPlanPtr Exchange(LogicalPlanPtr input, int key_col);

}  // namespace lp

}  // namespace modularis::planner

#endif  // MODULARIS_PLANNER_LOGICAL_PLAN_H_
