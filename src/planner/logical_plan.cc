#include "planner/logical_plan.h"

#include <cstdio>
#include <cstdlib>
#include <numeric>

namespace modularis::planner {
namespace {

[[noreturn]] void Die(const char* what) {
  std::fprintf(stderr, "logical plan construction error: %s\n", what);
  std::abort();
}

void Require(bool ok, const char* what) {
  if (!ok) Die(what);
}

}  // namespace

const char* NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kScan:
      return "Scan";
    case NodeKind::kFilter:
      return "Filter";
    case NodeKind::kProject:
      return "Project";
    case NodeKind::kJoin:
      return "Join";
    case NodeKind::kAggregate:
      return "Aggregate";
    case NodeKind::kSort:
      return "Sort";
    case NodeKind::kLimit:
      return "Limit";
    case NodeKind::kExchange:
      return "Exchange";
  }
  return "?";
}

namespace lp {

LogicalPlanPtr Scan(int table, std::string table_name, Schema table_schema) {
  auto n = std::make_shared<LogicalPlan>();
  n->kind = NodeKind::kScan;
  n->table = table;
  n->table_name = std::move(table_name);
  n->scan_cols.resize(table_schema.num_fields());
  std::iota(n->scan_cols.begin(), n->scan_cols.end(), 0);
  n->schema = table_schema;
  n->table_schema = std::move(table_schema);
  return n;
}

LogicalPlanPtr Filter(LogicalPlanPtr input, ExprPtr predicate) {
  Require(input != nullptr && predicate != nullptr, "Filter: null input");
  auto n = std::make_shared<LogicalPlan>();
  n->kind = NodeKind::kFilter;
  n->schema = input->schema;
  n->children.push_back(std::move(input));
  n->predicate = std::move(predicate);
  return n;
}

LogicalPlanPtr Project(LogicalPlanPtr input, std::vector<MapOutput> items,
                       Schema out_schema) {
  Require(input != nullptr, "Project: null input");
  Require(items.size() == out_schema.num_fields(),
          "Project: item count != output schema arity");
  auto n = std::make_shared<LogicalPlan>();
  n->kind = NodeKind::kProject;
  n->schema = std::move(out_schema);
  n->children.push_back(std::move(input));
  n->projections = std::move(items);
  return n;
}

LogicalPlanPtr Join(LogicalPlanPtr build, LogicalPlanPtr probe, JoinType type,
                    int build_key, int probe_key) {
  Require(build != nullptr && probe != nullptr, "Join: null input");
  Require(build_key >= 0 &&
              static_cast<size_t>(build_key) < build->schema.num_fields(),
          "Join: build key out of range");
  Require(probe_key >= 0 &&
              static_cast<size_t>(probe_key) < probe->schema.num_fields(),
          "Join: probe key out of range");
  auto n = std::make_shared<LogicalPlan>();
  n->kind = NodeKind::kJoin;
  n->schema = type == JoinType::kInner ? build->schema.Concat(probe->schema)
                                       : probe->schema;
  n->children.push_back(std::move(build));
  n->children.push_back(std::move(probe));
  n->join_type = type;
  n->build_key = build_key;
  n->probe_key = probe_key;
  return n;
}

LogicalPlanPtr Aggregate(LogicalPlanPtr input, std::vector<int> group_keys,
                         std::vector<AggSpec> aggs, ExprPtr having) {
  Require(input != nullptr, "Aggregate: null input");
  auto n = std::make_shared<LogicalPlan>();
  n->kind = NodeKind::kAggregate;
  n->schema = ReduceByKey::MakeOutputSchema(input->schema, group_keys, aggs);
  n->children.push_back(std::move(input));
  n->group_keys = std::move(group_keys);
  n->aggs = std::move(aggs);
  n->having = std::move(having);
  return n;
}

LogicalPlanPtr Sort(LogicalPlanPtr input, std::vector<SortKey> keys) {
  Require(input != nullptr, "Sort: null input");
  auto n = std::make_shared<LogicalPlan>();
  n->kind = NodeKind::kSort;
  n->schema = input->schema;
  n->children.push_back(std::move(input));
  n->sort_keys = std::move(keys);
  return n;
}

LogicalPlanPtr Limit(LogicalPlanPtr input, size_t limit) {
  Require(input != nullptr, "Limit: null input");
  auto n = std::make_shared<LogicalPlan>();
  n->kind = NodeKind::kLimit;
  n->schema = input->schema;
  n->children.push_back(std::move(input));
  n->limit = limit;
  return n;
}

LogicalPlanPtr Exchange(LogicalPlanPtr input, int key_col) {
  Require(input != nullptr, "Exchange: null input");
  auto n = std::make_shared<LogicalPlan>();
  n->kind = NodeKind::kExchange;
  n->schema = input->schema;
  n->children.push_back(std::move(input));
  n->exchange_key = key_col;
  return n;
}

}  // namespace lp
}  // namespace modularis::planner
