#ifndef MODULARIS_PLANNER_COST_H_
#define MODULARIS_PLANNER_COST_H_

#include <map>
#include <string>

#include "planner/logical_plan.h"

/// \file cost.h
/// Cardinality estimation and the join-order cost model.
///
/// The Catalog carries per-table row counts and per-column statistics
/// (distinct counts and min/max ranges); EstimateRows walks the logical
/// plan bottom-up with textbook independence-based selectivities, except
/// that range conjuncts on the same column inside an AND are first merged
/// into one interval (independence would square the selectivity of a
/// BETWEEN and mis-order joins whose inputs carry date windows).
///
/// The CostModel prices a join order with per-row weights for the
/// exchange, build and probe phases. Following HRDBMS's hybrid approach
/// (PAPERS.md) the weights can be seeded from a measured analytical
/// model: CostModel::FromJoinModel converts the phase-seconds breakdown
/// that baseline/join_model.h obtains by running the §5.2.2
/// microbenchmarks into per-row weights.

namespace modularis::planner {

struct ColumnStats {
  /// Distinct-value count (0 = unknown).
  double distinct = 0;
  /// Value range for numeric/date columns when has_range is set.
  bool has_range = false;
  double min = 0;
  double max = 0;
};

struct TableStats {
  double rows = 0;
  /// Keyed by full-table column index.
  std::map<int, ColumnStats> columns;
};

/// Statistics keyed by the scan's parameter-tuple index (LogicalPlan
/// ::table). Empty catalog = estimation disabled (passes keep the
/// authored plan).
struct Catalog {
  std::map<int, TableStats> tables;
  bool empty() const { return tables.empty(); }
};

/// Base-table origin of an output column, traced through projections,
/// joins and aggregate keys. table/column are -1 when the column is
/// computed (no single origin).
struct ColumnSite {
  int table = -1;
  int column = -1;
};

ColumnSite ColumnOrigin(const LogicalPlan& node, int col);

/// Selectivity of `pred` evaluated against `input`'s output, in [0, 1].
double Selectivity(const ExprPtr& pred, const LogicalPlan& input,
                   const Catalog& catalog);

/// Estimated output rows of `node` (global, across all ranks).
double EstimateRows(const LogicalPlan& node, const Catalog& catalog);

/// Per-row phase weights (arbitrary time units; only ratios matter).
/// Hash-table insertion is priced above probing — the asymmetry that
/// makes "build on the smaller side" the winning order.
struct CostModel {
  double exchange_per_row = 1.0;
  double build_per_row = 2.0;
  double probe_per_row = 1.0;

  /// Seeds the weights from a measured join-model phase breakdown
  /// (baseline/join_model.h RunJoinModel output: phase key → seconds for
  /// a symmetric join of `rows_per_side` rows per side). The build-probe
  /// phase is split 2:1 between insertion and probing, matching the
  /// microbenchmark's observed hash-table asymmetry. Unknown or empty
  /// phases leave the corresponding default untouched.
  static CostModel FromJoinModel(const std::map<std::string, double>& phases,
                                 double rows_per_side);
};

/// Cost of one hash join under `model` (both sides already exchanged).
double JoinCost(const CostModel& model, double build_rows, double probe_rows);

}  // namespace modularis::planner

#endif  // MODULARIS_PLANNER_COST_H_
