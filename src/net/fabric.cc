#include "net/fabric.h"

#include <cstring>
#include <thread>

namespace modularis::net {

namespace {
// Sleeps shorter than this are skipped: the scheduler cannot honour them
// accurately and they would only add noise.
constexpr auto kMinSleep = std::chrono::microseconds(50);
}  // namespace

Fabric::Fabric(int world_size, FabricOptions options)
    : world_size_(world_size), options_(std::move(options)) {
  windows_.resize(world_size_);
  nics_.reserve(world_size_);
  for (int i = 0; i < world_size_; ++i) {
    nics_.push_back(std::make_unique<Nic>());
  }
  mailboxes_.reserve(static_cast<size_t>(world_size_) * world_size_);
  for (int i = 0; i < world_size_ * world_size_; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

WindowId Fabric::RegisterWindow(int rank, size_t bytes) {
  std::lock_guard<std::mutex> lock(windows_mu_);
  auto& slots = windows_[rank];
  slots.push_back(std::make_unique<std::vector<uint8_t>>(bytes));
  return static_cast<WindowId>(slots.size() - 1);
}

uint8_t* Fabric::WindowData(int rank, WindowId id) {
  std::lock_guard<std::mutex> lock(windows_mu_);
  return windows_[rank][id]->data();
}

size_t Fabric::WindowSize(int rank, WindowId id) {
  std::lock_guard<std::mutex> lock(windows_mu_);
  return windows_[rank][id]->size();
}

void Fabric::FreeWindow(int rank, WindowId id) {
  std::lock_guard<std::mutex> lock(windows_mu_);
  windows_[rank][id].reset();
}

Fabric::Clock::time_point Fabric::ChargeTransfer(int rank, size_t len) {
  Nic& nic = *nics_[rank];
  double seconds = options_.latency_seconds +
                   static_cast<double>(len) / options_.bandwidth_bytes_per_sec;
  auto dur = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
  std::lock_guard<std::mutex> lock(nic.mu);
  auto now = Clock::now();
  auto start = nic.egress_busy_until > now ? nic.egress_busy_until : now;
  nic.egress_busy_until = start + dur;
  nic.bytes_sent += static_cast<int64_t>(len);
  nic.msgs_sent += 1;
  nic.charged_seconds += seconds;
  return nic.egress_busy_until;
}

Status Fabric::Put(int src, int dst, WindowId window, size_t offset,
                   const void* data, size_t len) {
  uint8_t* base;
  size_t size;
  {
    std::lock_guard<std::mutex> lock(windows_mu_);
    auto& slot = windows_[dst][window];
    if (slot == nullptr) {
      return Status::InvalidArgument("Put into freed window");
    }
    base = slot->data();
    size = slot->size();
  }
  if (offset + len > size) {
    return Status::OutOfRange("Put overruns window: offset " +
                              std::to_string(offset) + " + len " +
                              std::to_string(len) + " > size " +
                              std::to_string(size));
  }
  // Data lands immediately (senders write disjoint regions); only the
  // timing model is asynchronous.
  std::memcpy(base + offset, data, len);
  ChargeTransfer(src, len);
  return Status::OK();
}

void Fabric::Flush(int src) {
  Nic& nic = *nics_[src];
  // One critical section for read-clock + record-stall: a concurrent
  // worker Put between an unlocked read and a relock would otherwise
  // attribute its wire time to nobody (the latent race this fixes).
  Clock::time_point until;
  {
    std::lock_guard<std::mutex> lock(nic.mu);
    until = nic.egress_busy_until;
    auto now = Clock::now();
    if (until <= now) return;
    nic.stall_seconds += std::chrono::duration<double>(until - now).count();
  }
  if (options_.throttle && until - Clock::now() >= kMinSleep) {
    std::this_thread::sleep_until(until);
  }
}

void Fabric::Send(int src, int dst, std::vector<uint8_t> payload) {
  auto done = ChargeTransfer(src, payload.size());
  // Two-sided transfers do not overlap with computation: block for the
  // modelled serialization time before the message becomes visible.
  auto now = Clock::now();
  if (done > now) {
    double wait = std::chrono::duration<double>(done - now).count();
    {
      Nic& nic = *nics_[src];
      std::lock_guard<std::mutex> lock(nic.mu);
      nic.stall_seconds += wait;
    }
    if (options_.throttle && done - now >= kMinSleep) {
      std::this_thread::sleep_until(done);
    }
  }
  Mailbox& box = *mailboxes_[static_cast<size_t>(dst) * world_size_ + src];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.messages.push_back(std::move(payload));
  }
  box.cv.notify_all();
}

std::vector<uint8_t> Fabric::Recv(int dst, int src) {
  Mailbox& box = *mailboxes_[static_cast<size_t>(dst) * world_size_ + src];
  std::unique_lock<std::mutex> lock(box.mu);
  box.cv.wait(lock, [&] { return !box.messages.empty(); });
  std::vector<uint8_t> msg = std::move(box.messages.front());
  box.messages.pop_front();
  return msg;
}

int64_t Fabric::bytes_sent(int rank) const {
  Nic& nic = *nics_[rank];
  std::lock_guard<std::mutex> lock(nic.mu);
  return nic.bytes_sent;
}

int64_t Fabric::msgs_sent(int rank) const {
  Nic& nic = *nics_[rank];
  std::lock_guard<std::mutex> lock(nic.mu);
  return nic.msgs_sent;
}

double Fabric::charged_seconds(int rank) const {
  Nic& nic = *nics_[rank];
  std::lock_guard<std::mutex> lock(nic.mu);
  return nic.charged_seconds;
}

double Fabric::stall_seconds(int rank) const {
  Nic& nic = *nics_[rank];
  std::lock_guard<std::mutex> lock(nic.mu);
  return nic.stall_seconds;
}

void Fabric::ResetStats() {
  for (auto& nic : nics_) {
    std::lock_guard<std::mutex> lock(nic->mu);
    nic->bytes_sent = 0;
    nic->msgs_sent = 0;
    nic->charged_seconds = 0;
    nic->stall_seconds = 0;
    nic->egress_busy_until = Clock::time_point::min();
  }
}

}  // namespace modularis::net
