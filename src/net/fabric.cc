#include "net/fabric.h"

#include <cstring>
#include <thread>

namespace modularis::net {

namespace {
// Sleeps shorter than this are skipped: the scheduler cannot honour them
// accurately and they would only add noise.
constexpr auto kMinSleep = std::chrono::microseconds(50);
// Recv re-checks poisoning/cancellation at this period even without a
// notify — belt and braces against a lost wakeup while a peer dies.
constexpr auto kRecvPollPeriod = std::chrono::milliseconds(10);
}  // namespace

Fabric::Fabric(int world_size, FabricOptions options)
    : world_size_(world_size),
      options_(std::move(options)),
      injector_(options_.fault) {
  windows_.resize(world_size_);
  nics_.reserve(world_size_);
  for (int i = 0; i < world_size_; ++i) {
    nics_.push_back(std::make_unique<Nic>());
  }
  mailboxes_.reserve(static_cast<size_t>(world_size_) * world_size_);
  for (int i = 0; i < world_size_ * world_size_; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

WindowId Fabric::RegisterWindow(int rank, size_t bytes) {
  std::lock_guard<std::mutex> lock(windows_mu_);
  auto& slots = windows_[rank];
  slots.push_back(std::make_unique<std::vector<uint8_t>>(bytes));
  return static_cast<WindowId>(slots.size() - 1);
}

uint8_t* Fabric::WindowData(int rank, WindowId id) {
  std::lock_guard<std::mutex> lock(windows_mu_);
  return windows_[rank][id]->data();
}

size_t Fabric::WindowSize(int rank, WindowId id) {
  std::lock_guard<std::mutex> lock(windows_mu_);
  return windows_[rank][id]->size();
}

void Fabric::FreeWindow(int rank, WindowId id) {
  std::lock_guard<std::mutex> lock(windows_mu_);
  windows_[rank][id].reset();
}

Fabric::Clock::time_point Fabric::ChargeTransfer(int rank, size_t len) {
  Nic& nic = *nics_[rank];
  double seconds = options_.latency_seconds +
                   static_cast<double>(len) / options_.bandwidth_bytes_per_sec;
  auto dur = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
  std::lock_guard<std::mutex> lock(nic.mu);
  auto now = Clock::now();
  auto start = nic.egress_busy_until > now ? nic.egress_busy_until : now;
  nic.egress_busy_until = start + dur;
  nic.bytes_sent += static_cast<int64_t>(len);
  nic.msgs_sent += 1;
  nic.charged_seconds += seconds;
  return nic.egress_busy_until;
}

Status Fabric::Put(int src, int dst, WindowId window, size_t offset,
                   const void* data, size_t len) {
  if (injector_.enabled()) {
    // Fires before the memcpy: a failed Put leaves the window untouched,
    // so the caller's retry writes the same disjoint region once.
    MODULARIS_RETURN_NOT_OK(injector_.MaybeInject(FaultSite::kFabricPut));
  }
  uint8_t* base;
  size_t size;
  {
    std::lock_guard<std::mutex> lock(windows_mu_);
    auto& slot = windows_[dst][window];
    if (slot == nullptr) {
      return Status::InvalidArgument("Put into freed window");
    }
    base = slot->data();
    size = slot->size();
  }
  if (offset + len > size) {
    return Status::OutOfRange("Put overruns window: offset " +
                              std::to_string(offset) + " + len " +
                              std::to_string(len) + " > size " +
                              std::to_string(size));
  }
  // Data lands immediately (senders write disjoint regions); only the
  // timing model is asynchronous.
  std::memcpy(base + offset, data, len);
  ChargeTransfer(src, len);
  return Status::OK();
}

Status Fabric::Flush(int src) {
  if (poisoned_.load(std::memory_order_acquire)) return poison_status();
  if (injector_.enabled()) {
    MODULARIS_RETURN_NOT_OK(injector_.MaybeInject(FaultSite::kFabricFlush));
  }
  Nic& nic = *nics_[src];
  // One critical section for read-clock + record-stall: a concurrent
  // worker Put between an unlocked read and a relock would otherwise
  // attribute its wire time to nobody (the latent race this fixes).
  Clock::time_point until;
  {
    std::lock_guard<std::mutex> lock(nic.mu);
    until = nic.egress_busy_until;
    auto now = Clock::now();
    if (until <= now) return Status::OK();
    nic.stall_seconds += std::chrono::duration<double>(until - now).count();
  }
  if (options_.throttle && until - Clock::now() >= kMinSleep) {
    std::this_thread::sleep_until(until);
  }
  return Status::OK();
}

Status Fabric::Send(int src, int dst, std::vector<uint8_t> payload) {
  if (poisoned_.load(std::memory_order_acquire)) return poison_status();
  if (injector_.enabled()) {
    // Fires before the charge and the enqueue: a failed Send is invisible
    // to the receiver, so the caller's retry delivers exactly one copy.
    MODULARIS_RETURN_NOT_OK(injector_.MaybeInject(FaultSite::kFabricSend));
  }
  auto done = ChargeTransfer(src, payload.size());
  // Two-sided transfers do not overlap with computation: block for the
  // modelled serialization time before the message becomes visible.
  auto now = Clock::now();
  if (done > now) {
    double wait = std::chrono::duration<double>(done - now).count();
    {
      Nic& nic = *nics_[src];
      std::lock_guard<std::mutex> lock(nic.mu);
      nic.stall_seconds += wait;
    }
    if (options_.throttle && done - now >= kMinSleep) {
      std::this_thread::sleep_until(done);
    }
  }
  Mailbox& box = *mailboxes_[static_cast<size_t>(dst) * world_size_ + src];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.messages.push_back(std::move(payload));
  }
  box.cv.notify_all();
  return Status::OK();
}

Status Fabric::Recv(int dst, int src, std::vector<uint8_t>* out,
                    const CancellationToken* cancel) {
  Mailbox& box = *mailboxes_[static_cast<size_t>(dst) * world_size_ + src];
  std::unique_lock<std::mutex> lock(box.mu);
  // Wait for a message, a poison wakeup, or cancellation/deadline. A
  // queued message is still delivered after poisoning — the sender paid
  // for it before failing — so draining peers that already sent works.
  while (box.messages.empty()) {
    if (poisoned_.load(std::memory_order_acquire)) return poison_status();
    if (cancel != nullptr && cancel->ShouldStop()) return cancel->status();
    box.cv.wait_for(lock, kRecvPollPeriod);
  }
  if (injector_.enabled()) {
    // Fires before the pop: the message stays queued for the retry.
    MODULARIS_RETURN_NOT_OK(injector_.MaybeInject(FaultSite::kFabricRecv));
  }
  *out = std::move(box.messages.front());
  box.messages.pop_front();
  return Status::OK();
}

void Fabric::Poison(const Status& cause) {
  {
    std::lock_guard<std::mutex> lock(poison_mu_);
    if (poisoned_.load(std::memory_order_relaxed)) return;  // first wins
    poison_cause_ = Status::Aborted("peer failure poisoned the fabric: " +
                                    cause.ToString());
    poisoned_.store(true, std::memory_order_release);
  }
  // Wake every blocked Recv so no rank waits on a sender that died.
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
}

Status Fabric::poison_status() const {
  std::lock_guard<std::mutex> lock(poison_mu_);
  if (!poisoned_.load(std::memory_order_relaxed)) return Status::OK();
  return poison_cause_;
}

int64_t Fabric::bytes_sent(int rank) const {
  Nic& nic = *nics_[rank];
  std::lock_guard<std::mutex> lock(nic.mu);
  return nic.bytes_sent;
}

int64_t Fabric::msgs_sent(int rank) const {
  Nic& nic = *nics_[rank];
  std::lock_guard<std::mutex> lock(nic.mu);
  return nic.msgs_sent;
}

double Fabric::charged_seconds(int rank) const {
  Nic& nic = *nics_[rank];
  std::lock_guard<std::mutex> lock(nic.mu);
  return nic.charged_seconds;
}

double Fabric::stall_seconds(int rank) const {
  Nic& nic = *nics_[rank];
  std::lock_guard<std::mutex> lock(nic.mu);
  return nic.stall_seconds;
}

void Fabric::ResetStats() {
  for (auto& nic : nics_) {
    std::lock_guard<std::mutex> lock(nic->mu);
    nic->bytes_sent = 0;
    nic->msgs_sent = 0;
    nic->charged_seconds = 0;
    nic->stall_seconds = 0;
    nic->egress_busy_until = Clock::time_point::min();
  }
}

}  // namespace modularis::net
