#ifndef MODULARIS_NET_FABRIC_H_
#define MODULARIS_NET_FABRIC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/fault.h"
#include "core/stats.h"
#include "core/status.h"

/// \file fabric.h
/// Simulated cluster interconnect — the substitute for the paper's
/// InfiniBand QDR RDMA network (DESIGN.md §1).
///
/// Ranks are threads inside one process. The fabric provides:
///  * RMA windows: per-rank registered buffers remote ranks write into.
///  * One-sided asynchronous Put (RDMA write) + Flush (completion wait).
///  * Two-sided Send/Recv with a separate "TCP profile" used by the
///    baseline engines (no one-sided access, higher per-message cost).
///
/// Transfers are real memcpys; *timing* is modelled by advancing a per-NIC
/// busy-clock by latency + bytes/bandwidth. Put only advances the clock
/// (communication overlaps computation, as with real async RDMA); Flush
/// sleeps until the clock catches up, which is where network stall time
/// becomes visible — exactly the behaviour the paper's exchange relies on
/// (overlap partitioning with sends, wait at the end).

namespace modularis::net {

/// Cluster/network model parameters (the Table 3 analog).
struct FabricOptions {
  /// Human-readable profile name (printed by benchmark headers).
  std::string name = "sim-infiniband-qdr";
  /// Per-NIC egress bandwidth in bytes/second.
  double bandwidth_bytes_per_sec = 3.2e9;
  /// Per-message one-way latency in seconds.
  double latency_seconds = 2e-6;
  /// When false, transfers are not slept on (functional tests); charged
  /// time is still accounted in stats.
  bool throttle = true;

  /// Deterministic fault injection at Put/Send/Recv/Flush
  /// (docs/DESIGN-fault-tolerance.md). Injected failures fire BEFORE the
  /// op's side effect (no bytes land, no message enqueues), so a
  /// retried-to-success call is byte-identical to a fault-free one.
  FaultOptions fault;

  /// A slower, two-sided profile approximating IP-over-IB / datacenter TCP
  /// as used by the Presto/SingleStore-profile baselines.
  static FabricOptions TcpProfile() {
    FabricOptions o;
    o.name = "sim-tcp";
    o.bandwidth_bytes_per_sec = 1.1e9;
    o.latency_seconds = 40e-6;
    return o;
  }
};

/// Identifies one registered RMA window of one rank.
using WindowId = int;

/// The shared interconnect for a fixed-size world of ranks.
/// Thread-safe: each rank calls from its own thread.
class Fabric {
 public:
  Fabric(int world_size, FabricOptions options);

  int world_size() const { return world_size_; }
  const FabricOptions& options() const { return options_; }

  // -- RMA windows ----------------------------------------------------------

  /// Registers a `bytes`-sized window owned by `rank`. Window ids are
  /// assigned per rank in registration order; collectives coordinate so
  /// matching windows share ids across ranks.
  WindowId RegisterWindow(int rank, size_t bytes);

  /// Raw pointer to rank's window memory (valid until FreeWindow).
  uint8_t* WindowData(int rank, WindowId id);
  size_t WindowSize(int rank, WindowId id);

  /// Releases the window's memory. Outstanding Puts must be flushed.
  void FreeWindow(int rank, WindowId id);

  // -- One-sided (RDMA profile) ----------------------------------------------

  /// Asynchronous one-sided write of `len` bytes into (dst, window, offset).
  /// Callers must write disjoint regions (the exchange guarantees this via
  /// histogram-derived exclusive offsets). Returns immediately; completion
  /// is established by Flush(src).
  Status Put(int src, int dst, WindowId window, size_t offset,
             const void* data, size_t len);

  /// Blocks until all Puts issued by `src` have "drained" (busy-clock
  /// caught up). Stall time is recorded under "net.flush_wait".
  Status Flush(int src);

  // -- Two-sided (TCP profile, used by baselines) -----------------------------

  /// Sends a message from `src` to `dst` (copies the payload; blocks for
  /// the modelled serialization time — two-sided has no overlap). An
  /// injected failure fires before the message enqueues, so the send is
  /// safe to retry.
  Status Send(int src, int dst, std::vector<uint8_t> payload);

  /// Receives the next message sent from `src` to `dst` into `out`
  /// (blocking). Returns non-OK on an injected transient (message left
  /// queued; retry to pop it), on poisoning (a peer failed — the mailbox
  /// wait is woken rather than deadlocking forever on a sender that will
  /// never arrive), or when `cancel` stops the query / its deadline
  /// expires while waiting.
  Status Recv(int dst, int src, std::vector<uint8_t>* out,
              const CancellationToken* cancel = nullptr);

  // -- Failure propagation ----------------------------------------------------

  /// Poisons the fabric with a peer's failure: every blocked and future
  /// Recv/Send/Flush returns kAborted carrying `cause`'s message. Called
  /// by the runtimes when a rank fails so its peers cannot hang waiting
  /// for traffic that will never come.
  void Poison(const Status& cause);

  /// OK while healthy; the poison status once a peer failure landed.
  Status poison_status() const;

  /// The fabric's fault injector (counter export; see FaultSiteName).
  const FaultInjector& fault_injector() const { return injector_; }

  /// Charges `rank`'s egress clock for a transfer of `len` bytes without
  /// moving data (collectives whose payload travels via shared memory).
  void Charge(int rank, size_t len) { ChargeTransfer(rank, len); }

  // -- Accounting -------------------------------------------------------------

  /// Bytes put/sent by `rank` since the last ResetStats.
  int64_t bytes_sent(int rank) const;
  /// Messages (Puts/Sends/Charges) issued by `rank` since ResetStats.
  int64_t msgs_sent(int rank) const;
  /// Pure modelled transfer time charged to `rank` (bytes/bw + latency),
  /// independent of achieved overlap. This is the Fig. 11c series.
  double charged_seconds(int rank) const;
  /// Wall time `rank` spent blocked in Flush/Send.
  double stall_seconds(int rank) const;

  void ResetStats();

 private:
  using Clock = std::chrono::steady_clock;

  /// Per-rank egress state. All fields are guarded by `mu`; the busy-clock
  /// advance in ChargeTransfer is a single critical section so concurrent
  /// worker Puts from one rank serialize correctly in the timing model.
  struct Nic {
    std::mutex mu;
    Clock::time_point egress_busy_until = Clock::time_point::min();
    int64_t bytes_sent = 0;
    int64_t msgs_sent = 0;
    double charged_seconds = 0;
    double stall_seconds = 0;
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<uint8_t>> messages;
  };

  /// Advances rank's egress clock for a transfer of `len` bytes and
  /// returns the time point at which the transfer completes.
  Clock::time_point ChargeTransfer(int rank, size_t len);

  const int world_size_;
  const FabricOptions options_;
  FaultInjector injector_;

  mutable std::mutex poison_mu_;
  std::atomic<bool> poisoned_{false};
  Status poison_cause_;  // guarded by poison_mu_

  std::mutex windows_mu_;
  std::vector<std::vector<std::unique_ptr<std::vector<uint8_t>>>> windows_;

  std::vector<std::unique_ptr<Nic>> nics_;
  /// mailboxes_[dst * world + src]
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace modularis::net

#endif  // MODULARIS_NET_FABRIC_H_
