#!/usr/bin/env python3
"""Benchmark regression gate for BENCH_micro.json.

Compares the current run against the committed baseline and fails on a
throughput (rows_per_sec) regression beyond --threshold in the gated
microbenches: the partition→build→probe pipeline and the filter-heavy
expression benches.

Because CI machines differ from the machine that produced the committed
baseline, throughputs are first rescaled by a calibration bench
(--calibrate, default radix_histogram: pure memory bandwidth, untouched
by engine changes). The gate therefore measures "did this change slow the
gated paths down relative to the machine's speed", which is stable across
hosts; ratios like vectorized-vs-row speedups are additionally gated
directly.

Usage: bench_gate.py BASELINE.json CURRENT.json [--threshold 0.15]
"""

import argparse
import json
import sys

GATED_OPS = [
    ("partition_build_probe", False),
    ("partition_build_probe", True),
    ("filter_map", False),
    ("filter_map", True),
    ("expr_filter_interp_p01", False),
    ("expr_filter_interp_p50", False),
    ("expr_filter_interp_p99", False),
    ("expr_filter_batch_p01", True),
    ("expr_filter_batch_p50", True),
    ("expr_filter_batch_p99", True),
    ("expr_bytecode_filter_p01", True),
    ("expr_bytecode_filter_p50", True),
    ("expr_bytecode_filter_p99", True),
    ("expr_keys_interp", False),
    ("expr_bytecode_keys", True),
    ("reduce_by_key", False),
    ("reduce_by_key", True),
]

# (op, floor): the vectorized-vs-row speedup ratios that must not decay.
# Speedup ratios are more machine-sensitive than calibrated throughputs
# (they depend on the row/batch kernel cost *balance*, not just machine
# speed), so a decay relative to the committed baseline is only fatal if
# the current ratio has also dropped below `floor` — i.e. the win itself
# is gone, not merely smaller on this host than on the baseline host.
# Decay above the floor prints DRIFT and passes.
GATED_RATIOS = [
    ("partition_build_probe", 1.2),
    ("filter_map", 1.2),
    ("reduce_by_key", 1.2),
]

# Thread-scaling gates: (op, threads, min speedup of <op>_t<threads> over
# <op>_t1 in the CURRENT run). Only enforced when the machine that
# produced the current run reports >= `threads` hardware threads (the
# "_meta" entry) — a 1-core container cannot scale and is skipped, not
# failed.
SCALING_GATES = [
    ("partition_build_probe", 4, 2.0),
    # Parallel run-sort + loser-tree merge: the K-way merge is the serial
    # Amdahl tail, so the bar sits below the join pipeline's.
    ("sort_1m", 4, 1.8),
    # Partition-owned parallel aggregation (1M rows, 64k groups): the
    # radix partition pass adds two extra passes over the data, so the
    # parallel win has to beat that overhead too. Int and string key
    # shapes are gated; the multi-column shape is reported but not gated
    # (its serial baseline already runs the same batch key kernels).
    ("groupby_1m_int_g64k", 4, 1.8),
    ("groupby_1m_str_g64k", 4, 1.8),
    # Morsel-parallel exchange (single simulated rank): two-phase scatter
    # into write-combining buffers flushed by concurrent window Puts,
    # plus parallel owned-partition materialization.
    ("exchange_shuffle", 4, 2.0),
]

# Algorithmic-win gates, evaluated within the CURRENT run only (the ratio
# is machine-independent): TopK's bounded per-run selection (partial
# top-k per run + loser-tree merge) must beat the full sort it replaced.
# (fast_op, fast_vec, slow_op, slow_vec, min rows_per_sec ratio, min
# hardware threads): the single-thread pairs hold on any machine; only
# the 4-thread pairs need real cores to be meaningful.
WIN_GATES = [
    ("topk_1m_t1", True, "sort_1m_t1", True, 1.2, 1),
    ("topk_1m_t4", True, "sort_1m_t4", True, 1.2, 4),
    # Batched wire format (packed RowVector segments end-to-end) vs the
    # per-tuple drain ablation: one virtual Next() per record must cost
    # measurably more than the zero-copy batch drain.
    ("exchange_shuffle_t1", True, "exchange_shuffle_rowdrain_t1", True,
     1.5, 4),
    # Compute/network overlap: the pipelined exchange's modelled fabric
    # stall (these entries record stall seconds, so rows_per_sec is
    # rows/stall) must be strictly below the partition-then-send
    # ablation's.
    ("exchange_overlap_pipelined", True, "exchange_overlap_serialwire", True,
     1.05, 4),
    # Compiled expression tier: the bytecode filter program (fused
    # column-vs-constant range opcode over the selectivity-sweep
    # predicate) against the row-at-a-time interpreter, and the fused
    # serialize+hash key program against KeyCodec + HashKeysSpan.
    ("expr_bytecode_filter_p50", True, "expr_filter_interp_p50", False,
     1.5, 1),
    ("expr_bytecode_keys", True, "expr_keys_interp", False, 1.15, 1),
    # Fault-layer hook cost (docs/DESIGN-fault-tolerance.md): with the
    # injector armed at rate zero and a live-but-idle deadline token, the
    # fault-free paths must run within 3% of the plain entries. These are
    # overhead ceilings, not wins — the "fast" op is the instrumented one
    # and the ratio bar sits just below 1.
    ("exchange_shuffle_faultarmed_t1", True, "exchange_shuffle_t1", True,
     0.97, 4),
    ("groupby_1m_int_g64k_faultarmed_t4", True, "groupby_1m_int_g64k_t4",
     True, 0.97, 4),
    # Memory-governance hook cost (docs/DESIGN-memory.md): with a budget
    # armed far above the input (accounting charges run, admission never
    # trips, nothing spills), the aggregation must stay within 3% of the
    # plain t4 entry. The spilling entries (groupby_1m_int_g64k_spill,
    # join_spill_1m) are reported but not gated — spill throughput tracks
    # the modelled blob-store bandwidth, not engine regressions.
    ("groupby_1m_int_g64k_budgetarmed_t4", True, "groupby_1m_int_g64k_t4",
     True, 0.97, 4),
]


# Absolute-floor gates, evaluated within the CURRENT run only:
# (op, vectorized, min rows_per_sec). For the planner entries one "row"
# is one full plan derivation (build logical plan → optimize → split →
# lower all four platform shapes), measured at ~7.5k/s on a 1-core
# container — the floor guards the order of magnitude (planning must
# stay microseconds per query, negligible against any execution), not
# the exact figure.
FLOOR_GATES = [
    ("planner_q3_build_lower", None, 1000.0),
    ("planner_q18_build_lower", None, 1000.0),
]


def load(path):
    with open(path) as f:
        entries = json.load(f)
    table = {}
    meta = {}
    for e in entries:
        if e["op"] == "_meta":
            meta = e
            continue
        table[(e["op"], e.get("vectorized"))] = e
    return table, meta


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional throughput regression")
    ap.add_argument("--calibrate", default="radix_histogram",
                    help="bench used to normalize machine speed ('' = off)")
    args = ap.parse_args()

    base, _ = load(args.baseline)
    cur, cur_meta = load(args.current)

    scale = 1.0
    if args.calibrate:
        bkey = (args.calibrate, None)
        if bkey in base and bkey in cur:
            scale = cur[bkey]["rows_per_sec"] / base[bkey]["rows_per_sec"]
            print(f"calibration ({args.calibrate}): machine speed factor "
                  f"{scale:.3f}")
        else:
            print(f"calibration bench {args.calibrate!r} missing; "
                  "comparing raw throughputs")

    failures = []
    for op, vec in GATED_OPS:
        key = (op, vec)
        if key not in base:
            print(f"  NEW      {op} vectorized={vec} (no baseline entry)")
            continue
        if key not in cur:
            failures.append(f"{op} vectorized={vec}: missing from current run")
            continue
        expected = base[key]["rows_per_sec"] * scale
        got = cur[key]["rows_per_sec"]
        delta = got / expected - 1.0
        status = "OK"
        if got < expected * (1.0 - args.threshold):
            status = "REGRESSION"
            failures.append(
                f"{op} vectorized={vec}: {got / 1e6:.2f} Mrows/s vs expected "
                f"{expected / 1e6:.2f} Mrows/s ({delta * 100:+.1f}%)")
        print(f"  {status:10s} {op} vectorized={vec}: {delta * 100:+.1f}% "
              f"vs calibrated baseline")

    for op, floor in GATED_RATIOS:
        off_b, on_b = base.get((op, False)), base.get((op, True))
        off_c, on_c = cur.get((op, False)), cur.get((op, True))
        if not (off_b and on_b and off_c and on_c):
            continue
        ratio_b = on_b["rows_per_sec"] / off_b["rows_per_sec"]
        ratio_c = on_c["rows_per_sec"] / off_c["rows_per_sec"]
        delta = ratio_c / ratio_b - 1.0
        status = "OK"
        if ratio_c < ratio_b * (1.0 - args.threshold):
            if ratio_c >= floor:
                status = "DRIFT"
            else:
                status = "REGRESSION"
                failures.append(
                    f"{op} speedup ratio: {ratio_c:.2f}x vs baseline "
                    f"{ratio_b:.2f}x ({delta * 100:+.1f}%), below the "
                    f"{floor:.2f}x floor")
        print(f"  {status:10s} {op} vectorized speedup: {ratio_c:.2f}x "
              f"(baseline {ratio_b:.2f}x, floor {floor:.2f}x)")

    hw = cur_meta.get("hardware_concurrency", 0)
    for op, threads, min_ratio in SCALING_GATES:
        one = cur.get((f"{op}_t1", True))
        many = cur.get((f"{op}_t{threads}", True))
        if not (one and many):
            print(f"  MISSING    {op} thread-scaling entries (_t1/_t{threads})")
            continue
        ratio = many["rows_per_sec"] / one["rows_per_sec"]
        if hw < threads:
            print(f"  SKIPPED    {op} {threads}-thread speedup: {ratio:.2f}x "
                  f"(machine has {hw} hardware threads, gate needs "
                  f">= {threads})")
            continue
        status = "OK"
        if ratio < min_ratio:
            status = "REGRESSION"
            failures.append(
                f"{op} {threads}-thread speedup: {ratio:.2f}x < required "
                f"{min_ratio:.2f}x")
        print(f"  {status:10s} {op} {threads}-thread speedup: {ratio:.2f}x "
              f"(required {min_ratio:.2f}x)")

    for fast, fast_vec, slow, slow_vec, min_ratio, min_hw in WIN_GATES:
        f = cur.get((fast, fast_vec))
        s = cur.get((slow, slow_vec))
        if not (f and s):
            print(f"  MISSING    win-gate entries {fast} / {slow}")
            continue
        ratio = f["rows_per_sec"] / s["rows_per_sec"]
        if hw < min_hw:
            print(f"  SKIPPED    {fast} vs {slow}: {ratio:.2f}x (machine has "
                  f"{hw} hardware threads, gate needs >= {min_hw})")
            continue
        status = "OK"
        if ratio < min_ratio:
            status = "REGRESSION"
            failures.append(
                f"{fast} vs {slow}: {ratio:.2f}x < required {min_ratio:.2f}x")
        print(f"  {status:10s} {fast} vs {slow}: {ratio:.2f}x "
              f"(required {min_ratio:.2f}x)")

    for op, vec, floor in FLOOR_GATES:
        e = cur.get((op, vec))
        if not e:
            print(f"  MISSING    floor-gate entry {op}")
            continue
        got = e["rows_per_sec"]
        status = "OK"
        if got < floor:
            status = "REGRESSION"
            failures.append(
                f"{op}: {got:.0f} rows/s below the {floor:.0f} rows/s floor")
        print(f"  {status:10s} {op}: {got:.0f} rows/s (floor {floor:.0f})")

    if failures:
        print("\nbench gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
