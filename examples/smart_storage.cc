/// \file smart_storage.cc
/// The smart-storage integration of paper §4.5: pushing selections and
/// projections into the storage service (S3Select) through the decomposed
/// S3SelectScan — request → columnar table → collection → records — and
/// what the pushdown saves on the wire.
///
///   $ ./example_smart_storage

#include <cstdio>

#include "core/exec_context.h"
#include "serverless/s3select.h"
#include "serverless/serverless_ops.h"
#include "storage/csv.h"
#include "suboperators/scan_ops.h"

using namespace modularis;  // NOLINT — example brevity

int main() {
  // A CSV "object" with order records in simulated S3.
  Schema schema({Field::I64("order_id"), Field::Str("status", 8),
                 Field::F64("total"), Field::Date("day")});
  ColumnTablePtr orders = ColumnTable::Make(schema);
  for (int64_t i = 0; i < 50'000; ++i) {
    orders->column(0).AppendInt64(i);
    orders->column(1).AppendString(i % 7 == 0 ? "OPEN" : "DONE");
    orders->column(2).AppendFloat64(100.0 + (i % 900));
    orders->column(3).AppendInt32(DateFromYMD(1997, 1 + i % 12, 1 + i % 28));
  }
  orders->FinishBulkLoad();

  storage::BlobStore store;
  std::string csv = storage::WriteCsv(*orders);
  std::printf("stored orders.csv: %.1f MB\n", csv.size() / 1e6);
  store.Put("orders.csv", std::move(csv));

  storage::BlobClient client(&store, storage::BlobClientOptions::S3());
  serverless::S3SelectEngine engine(&store, serverless::S3SelectOptions{});

  // SELECT order_id, total FROM s3object WHERE status = 'OPEN'
  // — pushed into storage, decomposed into three reusable sub-operators.
  S3SelectRequest::Options req;
  req.object_schema = schema;
  req.projection = {0, 1, 2};
  req.predicate = ex::Eq(ex::Col(1), ex::Lit(std::string("OPEN")));

  auto request = std::make_unique<S3SelectRequest>(
      std::make_unique<TupleSource>(
          std::vector<Tuple>{Tuple{Item(std::string("orders.csv"))}}),
      req);
  auto collection = std::make_unique<TableToCollection>(std::move(request));
  RowScan records(std::move(collection));

  ExecContext ctx;
  ctx.s3select = &engine;
  ctx.blob = &client;
  if (!records.Open(&ctx).ok()) return 1;
  int64_t count = 0;
  double sum = 0;
  Tuple t;
  while (records.Next(&t)) {
    ++count;
    sum += t[0].row().GetFloat64(2);
  }
  if (!records.status().ok()) {
    std::fprintf(stderr, "scan failed: %s\n",
                 records.status().ToString().c_str());
    return 1;
  }
  (void)records.Close();

  std::printf("open orders: %lld, total value %.0f\n",
              static_cast<long long>(count), sum);
  std::printf("bytes over the wire with pushdown: %.2f MB "
              "(the service scanned the full object storage-side)\n",
              client.bytes_transferred() / 1e6);
  std::printf(
      "\nThe same three sub-operators would serve any other smart-storage "
      "backend —\nonly the request operator is service-specific (§4.5).\n");
  return 0;
}
