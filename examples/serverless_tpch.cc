/// \file serverless_tpch.cc
/// TPC-H Q12 on the serverless platform (Fig. 7): Lambda-profile workers,
/// base tables as ColumnFiles on simulated S3, the Lambada write-combining
/// exchange — and the exact same query on the RDMA platform for
/// comparison. Only the executor + exchange + scan leaves differ between
/// the two runs; that is the paper's headline claim.
///
///   $ ./example_serverless_tpch

#include <cstdio>

#include "tpch/queries.h"

using namespace modularis;  // NOLINT — example brevity

namespace {

void PrintResult(const RowVector& rows) {
  std::printf("%-12s %12s %12s\n", "l_shipmode", "high_count", "low_count");
  for (size_t i = 0; i < rows.size(); ++i) {
    RowRef r = rows.row(i);
    std::printf("%-12s %12lld %12lld\n",
                std::string(r.GetString(0)).c_str(),
                static_cast<long long>(r.GetInt64(1)),
                static_cast<long long>(r.GetInt64(2)));
  }
}

}  // namespace

int main() {
  tpch::GeneratorOptions gen;
  gen.scale_factor = 0.02;
  tpch::TpchTables db = tpch::GenerateTpch(gen);
  std::printf("TPC-H SF %.2f: %zu lineitem rows\n\n", gen.scale_factor,
              db.lineitem->num_rows());

  for (tpch::Platform platform :
       {tpch::Platform::kLambda, tpch::Platform::kRdma}) {
    tpch::TpchRunOptions opts = platform == tpch::Platform::kLambda
                                    ? tpch::TpchRunOptions::Lambda(4)
                                    : tpch::TpchRunOptions::Rdma(4);
    auto ctx = tpch::PrepareTpch(db, opts);
    if (!ctx.ok()) {
      std::fprintf(stderr, "prepare: %s\n", ctx.status().ToString().c_str());
      return 1;
    }
    StatsRegistry stats;
    auto result = tpch::RunTpchQuery(12, **ctx, opts, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "Q12: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("=== Q12 on %s ===\n", tpch::PlatformName(platform));
    PrintResult(**result);
    if (platform == tpch::Platform::kLambda) {
      std::printf("S3 traffic: %lld requests, %.1f MB\n\n",
                  static_cast<long long>(stats.GetCounter("s3.requests")),
                  stats.GetCounter("s3.bytes") / 1e6);
    } else {
      std::printf("RDMA traffic: %.1f MB one-sided writes\n",
                  stats.GetCounter("net.bytes_sent") / 1e6);
    }
    std::printf("memory: %.2f MB peak, %lld denials, %.1f MB spilled\n\n",
                stats.GetCounter("mem.peak_bytes") / 1e6,
                static_cast<long long>(stats.GetCounter("mem.denials")),
                stats.GetCounter("spill.bytes") / 1e6);
  }

  // The same query under a per-worker memory budget (the 3 GB Lambda
  // ceiling, scaled to this toy data): blocking operators degrade to
  // Grace spilling through the worker's S3 path, and the result is
  // byte-identical to the unlimited run (docs/DESIGN-memory.md).
  {
    tpch::TpchRunOptions opts = tpch::TpchRunOptions::Lambda(4);
    opts.exec.memory_limit_bytes = 8 << 10;
    auto ctx = tpch::PrepareTpch(db, opts);
    if (!ctx.ok()) return 1;
    StatsRegistry stats;
    auto result = tpch::RunTpchQuery(12, **ctx, opts, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "budgeted Q12: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("=== Q12 on %s, 8 KB worker budget ===\n",
                tpch::PlatformName(tpch::Platform::kLambda));
    PrintResult(**result);
    std::printf(
        "memory: %.2f MB peak worker, %lld denials; spilled %.1f MB in "
        "%lld chunks across %lld partitions\n\n",
        stats.GetCounter("mem.peak_bytes") / 1e6,
        static_cast<long long>(stats.GetCounter("mem.denials")),
        stats.GetCounter("spill.bytes") / 1e6,
        static_cast<long long>(stats.GetCounter("spill.chunks")),
        static_cast<long long>(stats.GetCounter("spill.partitions")));
  }

  std::printf(
      "Both platforms ran the same query plan; only the executor and the "
      "exchange/scan\nsub-operators were swapped (paper §4.4).\n");
  return 0;
}
