/// \file distributed_join.cc
/// The paper's flagship case study (§4.1) end to end: the RDMA-aware
/// distributed radix hash join of Fig. 3 on a simulated 4-rank cluster,
/// with the per-phase breakdown the Fig. 9 analysis is built on.
///
///   $ ./example_distributed_join

#include <cstdio>
#include <random>

#include "plans/distributed_join.h"

using namespace modularis;  // NOLINT — example brevity

int main() {
  const int world = 4;
  const int64_t rows = 1'000'000;

  // Per-rank fragments of two ⟨key, value⟩ relations with a 1-to-1 key
  // correspondence (the §5.2 workload).
  std::vector<RowVectorPtr> inner, outer;
  std::vector<int64_t> keys(rows);
  for (int64_t i = 0; i < rows; ++i) keys[i] = i;
  std::mt19937_64 rng(7);
  std::shuffle(keys.begin(), keys.end(), rng);
  for (int r = 0; r < world; ++r) {
    inner.push_back(RowVector::Make(KeyValueSchema()));
    outer.push_back(RowVector::Make(KeyValueSchema()));
  }
  for (int64_t i = 0; i < rows; ++i) {
    RowWriter wi = inner[i % world]->AppendRow();
    wi.SetInt64(0, keys[i]);
    wi.SetInt64(1, keys[i] * 2);
    RowWriter wo = outer[(i + 1) % world]->AppendRow();
    wo.SetInt64(0, keys[i]);
    wo.SetInt64(1, keys[i] * 3);
  }

  plans::DistJoinOptions opts;
  opts.world_size = world;
  opts.compress = true;  // §4.1.2 16→8 byte exchange compression

  StatsRegistry stats;
  auto result = plans::RunDistributedJoin(inner, outer, opts, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("joined %zu rows across %d ranks over '%s'\n",
              (*result)->size(), world, opts.fabric.name.c_str());
  std::printf("\nphase breakdown (slowest rank):\n");
  for (const auto& [phase, seconds] : stats.times()) {
    if (phase.rfind("phase.", 0) == 0) {
      std::printf("  %-28s %8.3f s\n", phase.c_str() + 6, seconds);
    }
  }
  std::printf(
      "\nnetwork: %.1f MB sent in %lld messages, %.3f s modelled transfer "
      "time, %.3f s stalled (overlap %.2f)\n",
      stats.GetCounter("net.bytes_sent") / 1e6,
      static_cast<long long>(stats.GetCounter("net.msgs_sent")),
      stats.GetTime("net.charged_seconds"),
      stats.GetTime("net.stall_seconds"),
      stats.GetTime("exchange.overlap_ratio"));
  std::printf(
      "memory: %.1f MB peak across ranks, %lld admission denials, "
      "%lld operators spilled %.1f MB\n",
      stats.GetCounter("mem.peak_bytes") / 1e6,
      static_cast<long long>(stats.GetCounter("mem.denials")),
      static_cast<long long>(stats.GetCounter("spill.ops.BuildProbe") +
                             stats.GetCounter("spill.ops.ReduceByKey") +
                             stats.GetCounter("spill.ops.Sort")),
      stats.GetCounter("spill.bytes") / 1e6);

  // Spot-check a row: key k joins value 2k with value 3k.
  RowRef row = (*result)->row(0);
  std::printf("\nsample: key=%lld value=%lld value_r=%lld\n",
              static_cast<long long>(row.GetInt64(0)),
              static_cast<long long>(row.GetInt64(1)),
              static_cast<long long>(row.GetInt64(2)));
  return 0;
}
