/// \file quickstart.cc
/// Five-minute tour of the Modularis public API: build a collection, wire
/// sub-operators into a plan (scan → filter → aggregate), execute it with
/// the Volcano interface, and inspect the result.
///
///   $ ./example_quickstart

#include <cstdio>

#include "core/exec_context.h"
#include "core/expr.h"
#include "suboperators/agg_ops.h"
#include "suboperators/basic_ops.h"
#include "suboperators/scan_ops.h"

using namespace modularis;  // NOLINT — example brevity

int main() {
  // 1. A physical collection: packed rows of ⟨city, temperature⟩.
  Schema schema({Field::Str("city", 16), Field::F64("temp_c")});
  RowVectorPtr readings = RowVector::Make(schema);
  struct Reading {
    const char* city;
    double temp;
  };
  for (const Reading& r :
       {Reading{"zurich", 14.5}, Reading{"zurich", 17.0},
        Reading{"nairobi", 24.0}, Reading{"zurich", 9.5},
        Reading{"nairobi", 27.5}, Reading{"oslo", -3.0}}) {
    RowWriter w = readings->AppendRow();
    w.SetString(0, r.city);
    w.SetFloat64(1, r.temp);
  }

  // 2. A plan of sub-operators: scan the collection record by record,
  //    keep warm readings, and aggregate per city.
  //    CollectionSource → RowScan → Filter → ReduceByKey
  auto scan = std::make_unique<RowScan>(std::make_unique<CollectionSource>(
      std::vector<RowVectorPtr>{readings}));
  auto warm = std::make_unique<Filter>(
      std::move(scan), ex::Gt(ex::Col(1), ex::Lit(0.0)));
  std::vector<AggSpec> aggs = {
      AggSpec{AggKind::kCount, nullptr, "n", AtomType::kInt64},
      AggSpec{AggKind::kMax, ex::Col(1), "max_c", AtomType::kFloat64},
      AggSpec{AggKind::kSum, ex::Col(1), "sum_c", AtomType::kFloat64},
  };
  ReduceByKey agg(std::move(warm), {0}, aggs, schema);

  // 3. Execute with the Volcano interface: Open / Next / Close.
  ExecContext ctx;
  Status st = agg.Open(&ctx);
  if (!st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%-10s %5s %8s %8s\n", "city", "n", "max", "avg");
  Tuple t;
  while (agg.Next(&t)) {
    RowRef row = t[0].row();
    int64_t n = row.GetInt64(1);
    std::printf("%-10s %5lld %8.1f %8.1f\n",
                std::string(row.GetString(0)).c_str(),
                static_cast<long long>(n), row.GetFloat64(2),
                row.GetFloat64(3) / static_cast<double>(n));
  }
  if (!agg.status().ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 agg.status().ToString().c_str());
    return 1;
  }
  (void)agg.Close();
  return 0;
}
