/// \file explain_tpch.cc
/// EXPLAIN for the eight evaluated TPC-H queries: prints the authored
/// logical plan, the optimized plan (with the cardinality estimates the
/// join-order pass acts on), and the lowered sub-operator DAG for each
/// platform configuration. The same renderers back the golden plan-shape
/// snapshots under tests/golden/planner/.
///
///   $ ./example_explain_tpch        # all eight queries
///   $ ./example_explain_tpch 18     # one query
///
/// Plans are rendered from catalog statistics alone (scale-factor 0.01
/// row counts); no data is generated or executed.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "planner/explain.h"
#include "planner/passes.h"
#include "tpch/queries.h"

using namespace modularis;  // NOLINT — example brevity

namespace {

/// The four lowering configurations of the paper's platforms: only the
/// scan leaves and the exchange implementation change per platform.
struct PlatformConfig {
  const char* title;
  planner::ScanLeafKind leaf;
  bool serverless;
  bool tcp;
};

constexpr PlatformConfig kConfigs[] = {
    {"mpi", planner::ScanLeafKind::kMemoryRows, false, false},
    {"tcp", planner::ScanLeafKind::kMemoryRows, false, true},
    {"s3", planner::ScanLeafKind::kColumnFile, true, false},
    {"s3select", planner::ScanLeafKind::kS3Select, true, false},
};

int ExplainQuery(int q, const planner::Catalog& catalog) {
  auto root = tpch::TpchLogicalPlan(q);
  if (!root.ok()) {
    std::fprintf(stderr, "Q%d: %s\n", q, root.status().ToString().c_str());
    return 1;
  }
  std::printf("==================== TPC-H Q%d ====================\n", q);
  std::printf("-- logical (as authored) --\n%s",
              planner::ExplainLogical(*root.value()).c_str());

  planner::PlannerOptions popts;
  popts.catalog = catalog;
  planner::LogicalPlanPtr opt =
      planner::Optimize(root.value(), popts, nullptr);
  std::printf("-- optimized (rows~ = cost-model estimate) --\n%s",
              planner::ExplainLogical(*opt, &catalog).c_str());

  auto split = planner::SplitAtDriver(opt);
  if (!split.ok()) {
    std::fprintf(stderr, "Q%d: %s\n", q, split.status().ToString().c_str());
    return 1;
  }
  for (const PlatformConfig& cfg : kConfigs) {
    planner::LoweringContext lctx;
    lctx.scan_leaf = cfg.leaf;
    lctx.serverless = cfg.serverless;
    lctx.fused = true;
    lctx.world = 4;
    lctx.exec.network_radix_bits = 4;
    lctx.exec.tcp_exchange = cfg.tcp;
    lctx.tag = "explain";
    PipelinePlan plan;
    auto lowered =
        planner::LowerRankPlan(*split.value().rank_root, &plan, &lctx);
    if (!lowered.ok()) {
      std::fprintf(stderr, "Q%d [%s]: %s\n", q, cfg.title,
                   lowered.status().ToString().c_str());
      return 1;
    }
    std::printf("-- physical %s, world=4 (per-rank pipelines) --\n%s",
                cfg.title, planner::ExplainPhysical(plan).c_str());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Scale-factor 0.01 row counts; distinct counts and value ranges come
  // from the TPC-H spec (see TpchCatalog).
  planner::Catalog catalog = tpch::TpchCatalog({60000, 15000, 1500, 2000});

  if (argc > 1) {
    return ExplainQuery(std::atoi(argv[1]), catalog);
  }
  int rc = 0;
  for (int q : {1, 3, 4, 6, 12, 14, 18, 19}) {
    rc |= ExplainQuery(q, catalog);
  }
  return rc;
}
